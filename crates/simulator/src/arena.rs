//! A flat, dense slot arena for per-node state.
//!
//! Both engines used to keep node state in a `HashMap<NodeId, _>`; at large system sizes
//! the hash probing and pointer chasing on every event dominated the hot path. The arena
//! stores slots in a single contiguous `Vec` indexed directly by a small integer (the raw
//! node id in the event engine, the shard-local stripe index in the sharded engine), so a
//! node lookup is one bounds check plus one indexed load and iteration is a linear scan.
//!
//! The arena is sized by the largest index ever inserted, so it assumes **dense indices**:
//! experiments assign node ids sequentially from zero, which is exactly that. Removing a
//! node leaves a vacant slot that a later insert with the same index may reuse.

/// A dense, index-addressed arena of slots.
///
/// # Examples
///
/// ```
/// use croupier_simulator::arena::NodeArena;
///
/// let mut arena: NodeArena<&str> = NodeArena::new();
/// arena.insert(2, "c");
/// arena.insert(0, "a");
/// assert_eq!(arena.len(), 2);
/// assert_eq!(arena.get(2), Some(&"c"));
/// assert_eq!(arena.remove(2), Some("c"));
/// assert!(!arena.contains(2));
/// ```
#[derive(Clone, Debug)]
pub struct NodeArena<T> {
    slots: Vec<Option<T>>,
    live: usize,
}

/// Upper bound on arena indices; catches accidental use of hash-like (sparse) node ids,
/// which would make the backing `Vec` allocation explode.
pub const MAX_ARENA_INDEX: usize = 1 << 28;

impl<T> NodeArena<T> {
    /// Creates an empty arena.
    pub fn new() -> Self {
        NodeArena {
            slots: Vec::new(),
            live: 0,
        }
    }

    /// Creates an empty arena with room for `capacity` slots before reallocating.
    pub fn with_capacity(capacity: usize) -> Self {
        NodeArena {
            slots: Vec::with_capacity(capacity),
            live: 0,
        }
    }

    /// Inserts `value` at `index`, returning the previous occupant if the slot was full.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds [`MAX_ARENA_INDEX`] — the arena is meant for dense,
    /// sequentially assigned indices, not hash-like identifiers.
    pub fn insert(&mut self, index: usize, value: T) -> Option<T> {
        assert!(
            index <= MAX_ARENA_INDEX,
            "arena index {index} is too sparse; node ids must be assigned densely"
        );
        if index >= self.slots.len() {
            self.slots.resize_with(index + 1, || None);
        }
        let previous = self.slots[index].replace(value);
        if previous.is_none() {
            self.live += 1;
        }
        previous
    }

    /// Removes and returns the value at `index`, if any.
    pub fn remove(&mut self, index: usize) -> Option<T> {
        let value = self.slots.get_mut(index).and_then(Option::take);
        if value.is_some() {
            self.live -= 1;
        }
        value
    }

    /// Shared access to the value at `index`.
    pub fn get(&self, index: usize) -> Option<&T> {
        self.slots.get(index).and_then(Option::as_ref)
    }

    /// Exclusive access to the value at `index`.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut T> {
        self.slots.get_mut(index).and_then(Option::as_mut)
    }

    /// Returns `true` if the slot at `index` is occupied.
    pub fn contains(&self, index: usize) -> bool {
        matches!(self.slots.get(index), Some(Some(_)))
    }

    /// Number of occupied slots.
    pub fn len(&self) -> usize {
        self.live
    }

    /// Exclusive upper bound on the indices of occupied slots: every occupied index is
    /// strictly below this value. The bound only grows over the arena's lifetime (removals
    /// leave vacant slots), which makes it a stable size for dense index-addressed side
    /// tables — the metrics pipeline uses it to map node ids to array slots without any
    /// hashing.
    pub fn slot_upper_bound(&self) -> usize {
        self.slots.len()
    }

    /// Returns `true` when no slot is occupied.
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over `(index, &value)` pairs of occupied slots in ascending index order.
    pub fn iter(&self) -> impl Iterator<Item = (usize, &T)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_ref().map(|v| (i, v)))
    }

    /// Iterates over `(index, &mut value)` pairs of occupied slots in ascending index order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (usize, &mut T)> {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, slot)| slot.as_mut().map(|v| (i, v)))
    }
}

impl<T> Default for NodeArena<T> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut arena = NodeArena::new();
        assert!(arena.is_empty());
        assert_eq!(arena.insert(3, 30), None);
        assert_eq!(arena.insert(1, 10), None);
        assert_eq!(arena.len(), 2);
        assert_eq!(arena.get(3), Some(&30));
        assert_eq!(arena.get(2), None);
        *arena.get_mut(1).unwrap() += 5;
        assert_eq!(arena.remove(1), Some(15));
        assert_eq!(arena.remove(1), None);
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn insert_replaces_and_reports_previous() {
        let mut arena = NodeArena::new();
        arena.insert(0, "old");
        assert_eq!(arena.insert(0, "new"), Some("old"));
        assert_eq!(arena.len(), 1, "replacement must not change the live count");
    }

    #[test]
    fn iteration_is_in_index_order_and_skips_vacant() {
        let mut arena = NodeArena::new();
        for i in [5usize, 0, 9, 2] {
            arena.insert(i, i * 10);
        }
        arena.remove(9);
        let seen: Vec<(usize, usize)> = arena.iter().map(|(i, v)| (i, *v)).collect();
        assert_eq!(seen, vec![(0, 0), (2, 20), (5, 50)]);
        assert_eq!(
            arena.slot_upper_bound(),
            10,
            "the bound covers the highest index ever inserted, vacant or not"
        );
        for (_, v) in arena.iter_mut() {
            *v += 1;
        }
        assert_eq!(arena.get(2), Some(&21));
    }

    #[test]
    fn removed_slot_can_be_reused() {
        let mut arena = NodeArena::new();
        arena.insert(4, 'a');
        arena.remove(4);
        assert!(!arena.contains(4));
        arena.insert(4, 'b');
        assert_eq!(arena.get(4), Some(&'b'));
        assert_eq!(arena.len(), 1);
    }

    #[test]
    fn churn_reuses_slots_without_growing_the_bound() {
        let mut arena = NodeArena::new();
        for i in 0..16usize {
            arena.insert(i, i);
        }
        let bound = arena.slot_upper_bound();
        // Many remove/re-insert generations over the same index range: the backing
        // storage must not grow, and the live count must track the churn exactly.
        for generation in 1..=50usize {
            for i in (0..16).step_by(3) {
                assert!(arena.remove(i).is_some());
            }
            assert_eq!(arena.len(), 16 - 6);
            for i in (0..16).step_by(3) {
                assert_eq!(arena.insert(i, generation * 100 + i), None);
            }
            assert_eq!(arena.len(), 16);
            assert_eq!(
                arena.slot_upper_bound(),
                bound,
                "slot reuse must not grow the arena"
            );
        }
        assert_eq!(arena.get(3), Some(&5003));
        assert_eq!(arena.get(1), Some(&1), "untouched slots keep their values");
    }

    #[test]
    #[should_panic(expected = "assigned densely")]
    fn sparse_indices_are_rejected() {
        let mut arena = NodeArena::new();
        arena.insert(MAX_ARENA_INDEX + 1, 0u8);
    }
}
