//! The bootstrap server.
//!
//! The paper assumes a bootstrap server that hands joining nodes a set of public nodes
//! (§V: "a number of public nodes returned by a bootstrap server"). The registry below
//! plays that role: experiments register public nodes as they join, and protocols sample
//! from it through [`Context::bootstrap_sample`](crate::Context::bootstrap_sample) when they
//! initialise their views or run the NAT-type identification protocol.

use std::collections::HashSet;

use rand::rngs::SmallRng;
use rand::seq::index::sample as index_sample;

use crate::types::NodeId;

/// Registry of public nodes known to the bootstrap server.
#[derive(Clone, Debug, Default)]
pub struct BootstrapRegistry {
    public_nodes: Vec<NodeId>,
    members: HashSet<NodeId>,
}

impl BootstrapRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        BootstrapRegistry::default()
    }

    /// Registers `node` as a public node available to joiners. Duplicate registrations are
    /// ignored.
    pub fn register(&mut self, node: NodeId) {
        if self.members.insert(node) {
            self.public_nodes.push(node);
        }
    }

    /// Removes `node` (it failed or left the system).
    pub fn unregister(&mut self, node: NodeId) {
        if self.members.remove(&node) {
            self.public_nodes.retain(|n| *n != node);
        }
    }

    /// Returns `true` if `node` is currently registered.
    pub fn contains(&self, node: NodeId) -> bool {
        self.members.contains(&node)
    }

    /// Number of registered public nodes.
    pub fn len(&self) -> usize {
        self.public_nodes.len()
    }

    /// Returns `true` when no public node is registered.
    pub fn is_empty(&self) -> bool {
        self.public_nodes.is_empty()
    }

    /// Samples up to `count` distinct public nodes uniformly at random.
    pub fn sample(&self, count: usize, rng: &mut SmallRng) -> Vec<NodeId> {
        let n = self.public_nodes.len();
        if n == 0 || count == 0 {
            return Vec::new();
        }
        let amount = count.min(n);
        index_sample(rng, n, amount)
            .into_iter()
            .map(|i| self.public_nodes[i])
            .collect()
    }

    /// Samples up to `count` distinct public nodes, never returning `excluded`.
    pub fn sample_excluding(
        &self,
        count: usize,
        excluded: NodeId,
        rng: &mut SmallRng,
    ) -> Vec<NodeId> {
        // Sample one extra so that filtering out `excluded` still leaves `count` candidates
        // whenever possible.
        let mut candidates = self.sample(count + 1, rng);
        candidates.retain(|n| *n != excluded);
        candidates.truncate(count);
        candidates
    }

    /// All registered public nodes, in registration order.
    pub fn all(&self) -> &[NodeId] {
        &self.public_nodes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(5)
    }

    #[test]
    fn register_and_unregister() {
        let mut b = BootstrapRegistry::new();
        b.register(NodeId::new(1));
        b.register(NodeId::new(2));
        b.register(NodeId::new(1)); // duplicate ignored
        assert_eq!(b.len(), 2);
        assert!(b.contains(NodeId::new(1)));
        b.unregister(NodeId::new(1));
        assert!(!b.contains(NodeId::new(1)));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn sample_returns_distinct_members() {
        let mut b = BootstrapRegistry::new();
        for i in 0..20 {
            b.register(NodeId::new(i));
        }
        let mut r = rng();
        let s = b.sample(10, &mut r);
        assert_eq!(s.len(), 10);
        let mut sorted = s.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 10, "samples must be distinct");
        assert!(s.iter().all(|n| b.contains(*n)));
    }

    #[test]
    fn sample_never_exceeds_population() {
        let mut b = BootstrapRegistry::new();
        b.register(NodeId::new(1));
        b.register(NodeId::new(2));
        let mut r = rng();
        assert_eq!(b.sample(10, &mut r).len(), 2);
        assert!(b.sample(0, &mut r).is_empty());
    }

    #[test]
    fn sample_from_empty_registry_is_empty() {
        let b = BootstrapRegistry::new();
        let mut r = rng();
        assert!(b.sample(3, &mut r).is_empty());
        assert!(b.is_empty());
    }

    #[test]
    fn sample_excluding_filters_the_caller() {
        let mut b = BootstrapRegistry::new();
        for i in 0..5 {
            b.register(NodeId::new(i));
        }
        let mut r = rng();
        for _ in 0..50 {
            let s = b.sample_excluding(4, NodeId::new(0), &mut r);
            assert!(!s.contains(&NodeId::new(0)));
            assert!(s.len() <= 4);
        }
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        let mut b = BootstrapRegistry::new();
        for i in 0..10 {
            b.register(NodeId::new(i));
        }
        let mut r = rng();
        let mut counts = [0u32; 10];
        for _ in 0..5_000 {
            for n in b.sample(1, &mut r) {
                counts[n.as_u64() as usize] += 1;
            }
        }
        let min = *counts.iter().min().unwrap() as f64;
        let max = *counts.iter().max().unwrap() as f64;
        assert!(
            max / min < 1.5,
            "bootstrap sampling should be roughly uniform: {counts:?}"
        );
    }
}
