//! A small-buffer vector for allocation-free message payloads.
//!
//! Every shuffle payload in the workspace — Croupier's descriptor subsets and piggy-backed
//! estimates, Cyclon/Gozar/Nylon's descriptor lists — is bounded by the paper's
//! view-subset parameters (a handful of entries), yet used to be a heap-allocated `Vec`
//! living for exactly one delivery. [`InlineVec`] stores up to `N` elements inline in the
//! containing message and only *spills* to a heap `Vec` when a payload exceeds the inline
//! capacity (oversized experiment configurations), so the steady-state message plane
//! performs zero allocations per exchange.
//!
//! The build environment has no crates.io access (no `smallvec`/`arrayvec`), so the type
//! is hand-rolled — deliberately without `unsafe`: the inline buffer is a plain `[T; N]`
//! initialised with `T::default()`, which is free for the `Copy` payload element types and
//! keeps the implementation trivially sound.

use serde::{Deserialize, Serialize};

/// The backing storage: inline array until the length exceeds `N`, then a heap `Vec`.
#[derive(Clone, Debug)]
enum Repr<T, const N: usize> {
    /// Up to `N` live elements in `buf[..len]`; the rest hold `T::default()` filler.
    Inline { len: usize, buf: [T; N] },
    /// Spilled: all elements on the heap. A spilled vector never moves back inline, so
    /// repeated push/clear cycles at spilled size reuse one heap allocation.
    Heap(Vec<T>),
}

/// A vector storing up to `N` elements inline, spilling to the heap beyond that.
///
/// Dereferences to `[T]`, so slice-based call sites (`&payload.descriptors`) work
/// unchanged. The element type must implement [`Default`] (used as inline filler) and
/// [`Clone`].
///
/// # Examples
///
/// ```
/// use croupier_simulator::inline::InlineVec;
///
/// let mut v: InlineVec<u32, 4> = InlineVec::new();
/// for i in 0..6 {
///     v.push(i); // spills to the heap at the fifth push
/// }
/// assert_eq!(v.len(), 6);
/// assert_eq!(&v[..3], &[0, 1, 2]);
/// assert!(v.spilled());
/// ```
#[derive(Clone, Debug)]
pub struct InlineVec<T, const N: usize> {
    repr: Repr<T, N>,
}

impl<T: Default + Clone, const N: usize> InlineVec<T, N> {
    /// Creates an empty vector (no heap allocation).
    pub fn new() -> Self {
        InlineVec {
            repr: Repr::Inline {
                len: 0,
                buf: std::array::from_fn(|_| T::default()),
            },
        }
    }

    /// Appends an element, spilling to the heap when the inline capacity is exceeded.
    pub fn push(&mut self, value: T) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if *len < N {
                    buf[*len] = value;
                    *len += 1;
                } else {
                    let mut heap = Vec::with_capacity(N * 2);
                    for slot in buf.iter_mut() {
                        heap.push(std::mem::take(slot));
                    }
                    heap.push(value);
                    self.repr = Repr::Heap(heap);
                }
            }
            Repr::Heap(vec) => vec.push(value),
        }
    }

    /// Removes and returns the last element, or `None` when empty.
    pub fn pop(&mut self) -> Option<T> {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                if *len == 0 {
                    None
                } else {
                    *len -= 1;
                    Some(std::mem::take(&mut buf[*len]))
                }
            }
            Repr::Heap(vec) => vec.pop(),
        }
    }

    /// Number of live elements.
    pub fn len(&self) -> usize {
        match &self.repr {
            Repr::Inline { len, .. } => *len,
            Repr::Heap(vec) => vec.len(),
        }
    }

    /// Returns `true` when the vector holds no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Removes every element. A spilled vector keeps its heap capacity.
    pub fn clear(&mut self) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                for slot in buf[..*len].iter_mut() {
                    *slot = T::default();
                }
                *len = 0;
            }
            Repr::Heap(vec) => vec.clear(),
        }
    }

    /// Shortens the vector to at most `new_len` elements.
    pub fn truncate(&mut self, new_len: usize) {
        match &mut self.repr {
            Repr::Inline { len, buf } => {
                while *len > new_len {
                    *len -= 1;
                    buf[*len] = T::default();
                }
            }
            Repr::Heap(vec) => vec.truncate(new_len),
        }
    }

    /// The live elements as a slice.
    pub fn as_slice(&self) -> &[T] {
        match &self.repr {
            Repr::Inline { len, buf } => &buf[..*len],
            Repr::Heap(vec) => vec,
        }
    }

    /// The live elements as a mutable slice.
    pub fn as_mut_slice(&mut self) -> &mut [T] {
        match &mut self.repr {
            Repr::Inline { len, buf } => &mut buf[..*len],
            Repr::Heap(vec) => vec,
        }
    }

    /// Iterates over the live elements.
    pub fn iter(&self) -> std::slice::Iter<'_, T> {
        self.as_slice().iter()
    }

    /// Returns `true` once the vector has spilled to the heap.
    pub fn spilled(&self) -> bool {
        matches!(self.repr, Repr::Heap(_))
    }
}

impl<T: Default + Clone, const N: usize> Default for InlineVec<T, N> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const N: usize> std::ops::Deref for InlineVec<T, N>
where
    T: Default + Clone,
{
    type Target = [T];

    fn deref(&self) -> &[T] {
        self.as_slice()
    }
}

impl<T, const N: usize> std::ops::DerefMut for InlineVec<T, N>
where
    T: Default + Clone,
{
    fn deref_mut(&mut self) -> &mut [T] {
        self.as_mut_slice()
    }
}

impl<T: Default + Clone + PartialEq, const N: usize> PartialEq for InlineVec<T, N> {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl<T: Default + Clone + Eq, const N: usize> Eq for InlineVec<T, N> {}

impl<T: Default + Clone, const N: usize> FromIterator<T> for InlineVec<T, N> {
    fn from_iter<I: IntoIterator<Item = T>>(iter: I) -> Self {
        let mut v = InlineVec::new();
        for item in iter {
            v.push(item);
        }
        v
    }
}

impl<T: Default + Clone, const N: usize> Extend<T> for InlineVec<T, N> {
    fn extend<I: IntoIterator<Item = T>>(&mut self, iter: I) {
        for item in iter {
            self.push(item);
        }
    }
}

impl<T: Default + Clone, const N: usize> From<Vec<T>> for InlineVec<T, N> {
    fn from(vec: Vec<T>) -> Self {
        if vec.len() > N {
            InlineVec {
                repr: Repr::Heap(vec),
            }
        } else {
            vec.into_iter().collect()
        }
    }
}

impl<'a, T: Default + Clone, const N: usize> IntoIterator for &'a InlineVec<T, N> {
    type Item = &'a T;
    type IntoIter = std::slice::Iter<'a, T>;

    fn into_iter(self) -> Self::IntoIter {
        self.as_slice().iter()
    }
}

/// Owned iterator over an [`InlineVec`].
pub struct IntoIter<T, const N: usize> {
    inner: IntoIterRepr<T, N>,
}

enum IntoIterRepr<T, const N: usize> {
    Inline(std::iter::Take<std::array::IntoIter<T, N>>),
    Heap(std::vec::IntoIter<T>),
}

impl<T, const N: usize> Iterator for IntoIter<T, N> {
    type Item = T;

    fn next(&mut self) -> Option<T> {
        match &mut self.inner {
            IntoIterRepr::Inline(iter) => iter.next(),
            IntoIterRepr::Heap(iter) => iter.next(),
        }
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        match &self.inner {
            IntoIterRepr::Inline(iter) => iter.size_hint(),
            IntoIterRepr::Heap(iter) => iter.size_hint(),
        }
    }
}

impl<T: Default + Clone, const N: usize> IntoIterator for InlineVec<T, N> {
    type Item = T;
    type IntoIter = IntoIter<T, N>;

    fn into_iter(self) -> Self::IntoIter {
        let inner = match self.repr {
            Repr::Inline { len, buf } => IntoIterRepr::Inline(buf.into_iter().take(len)),
            Repr::Heap(vec) => IntoIterRepr::Heap(vec.into_iter()),
        };
        IntoIter { inner }
    }
}

// Wire-representability markers for the offline serde shim: payload types embed
// `InlineVec` directly in `#[derive(Serialize, Deserialize)]` messages.
impl<T: Serialize, const N: usize> Serialize for InlineVec<T, N> {}
impl<'de, T: Deserialize<'de>, const N: usize> Deserialize<'de> for InlineVec<T, N> {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn starts_empty_and_inline() {
        let v: InlineVec<u32, 4> = InlineVec::new();
        assert!(v.is_empty());
        assert_eq!(v.len(), 0);
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[] as &[u32]);
    }

    #[test]
    fn pushes_within_inline_capacity() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..4 {
            v.push(i);
        }
        assert_eq!(v.len(), 4);
        assert!(!v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3]);
    }

    #[test]
    fn spills_beyond_capacity_and_preserves_order() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        for i in 0..10 {
            v.push(i);
        }
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
    }

    #[test]
    fn pop_returns_lifo_and_clears_slots() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        v.push(1);
        v.push(2);
        assert_eq!(v.pop(), Some(2));
        assert_eq!(v.pop(), Some(1));
        assert_eq!(v.pop(), None);
    }

    #[test]
    fn clear_and_truncate_work_in_both_representations() {
        let mut inline: InlineVec<u32, 4> = (0..3).collect();
        inline.truncate(1);
        assert_eq!(inline.as_slice(), &[0]);
        inline.clear();
        assert!(inline.is_empty());

        let mut heap: InlineVec<u32, 4> = (0..8).collect();
        assert!(heap.spilled());
        heap.truncate(6);
        assert_eq!(heap.len(), 6);
        heap.clear();
        assert!(heap.is_empty());
        assert!(heap.spilled(), "a spilled vector keeps its heap buffer");
    }

    #[test]
    fn deref_enables_slice_apis() {
        let mut v: InlineVec<u32, 4> = (0..4).collect();
        assert_eq!(v.first(), Some(&0));
        assert_eq!(&v[1..3], &[1, 2]);
        v.sort_unstable_by(|a, b| b.cmp(a));
        assert_eq!(v.as_slice(), &[3, 2, 1, 0]);
    }

    #[test]
    fn equality_ignores_representation() {
        let inline: InlineVec<u32, 8> = (0..5).collect();
        let spilled: InlineVec<u32, 4> = (0..5).collect();
        assert_eq!(inline.as_slice(), spilled.as_slice());
        let a: InlineVec<u32, 4> = (0..3).collect();
        let b: InlineVec<u32, 4> = (0..3).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn from_vec_keeps_large_inputs_on_the_heap() {
        let v: InlineVec<u32, 2> = vec![1, 2, 3].into();
        assert!(v.spilled());
        assert_eq!(v.as_slice(), &[1, 2, 3]);
        let w: InlineVec<u32, 4> = vec![1, 2].into();
        assert!(!w.spilled());
        assert_eq!(w.as_slice(), &[1, 2]);
    }

    #[test]
    fn owned_iteration_yields_every_element() {
        let inline: InlineVec<String, 4> = ["a", "b"].into_iter().map(String::from).collect();
        assert_eq!(inline.into_iter().collect::<Vec<_>>(), vec!["a", "b"]);
        let spilled: InlineVec<u32, 2> = (0..5).collect();
        assert_eq!(spilled.into_iter().sum::<u32>(), 10);
    }

    #[test]
    fn extend_and_clone_round_trip() {
        let mut v: InlineVec<u32, 4> = InlineVec::new();
        v.extend(0..3);
        let clone = v.clone();
        assert_eq!(v, clone);
        v.extend(3..9);
        assert!(v.spilled());
        assert_eq!(v.len(), 9);
        assert_eq!(clone.len(), 3, "clone is independent");
    }

    #[test]
    fn non_copy_elements_are_supported() {
        let mut v: InlineVec<Vec<u32>, 2> = InlineVec::new();
        v.push(vec![1]);
        v.push(vec![2, 2]);
        v.push(vec![3, 3, 3]); // spills
        assert_eq!(v.len(), 3);
        assert_eq!(v[2], vec![3, 3, 3]);
    }
}
