//! The common surface of the two execution engines.
//!
//! [`SimulationEngine`] abstracts over the event-driven [`Simulation`](crate::Simulation)
//! and the phase-parallel [`ShardedSimulation`](crate::ShardedSimulation) so that the
//! experiment driver and the metrics crate can run any protocol on either engine without
//! special-casing. The trait deliberately exposes *snapshot*-style accessors (owned
//! [`TrafficLedger`], callback-based node iteration) because the sharded engine keeps its
//! state split across shards and has no single borrow to hand out.
//!
//! This trait is the *driver-facing* half of the engine seam. The *protocol-facing* half
//! is [`Transport`](crate::Transport): both engines hand protocol callbacks a
//! [`Context`](crate::Context) built over their own transport implementation, so protocol
//! crates depend on neither engine type. See DESIGN.md §13 for the seam's determinism
//! argument.

use crate::engine::{NetworkStats, SimulationConfig};
use crate::faults::{FaultPlane, FaultReport};
use crate::latency::LatencyModel;
use crate::loss::LossModel;
use crate::network::DeliveryFilter;
use crate::protocol::{Protocol, PssNode};
use crate::time::{SimDuration, SimTime};
use crate::traffic::TrafficLedger;
use crate::types::NodeId;

/// A callback invoked by an engine at every gossip-round barrier.
///
/// Round barriers are the instants `n * round_period` (`n >= 1`). Both engines guarantee
/// the same observation point: when the hook runs, every event scheduled *strictly
/// before* the barrier instant has executed and no event scheduled *at or after* it has.
/// In the sharded engine the hook additionally runs after the barrier's canonical
/// cross-shard merge, and always on the coordinating thread — so a hook that mutates
/// shared state (the scripted NAT-dynamics executor mutating the `NatTopology` behind the
/// delivery filter) observes and produces the same state for any worker-thread count,
/// preserving the engine's bit-identity guarantee.
///
/// Hooks fire only for barriers after their installation; installing a hook mid-run never
/// replays past rounds.
pub trait RoundHook {
    /// Called at the barrier that closes gossip round `round` (1-based), i.e. at virtual
    /// time `now = round * round_period`.
    fn on_round_barrier(&mut self, round: u64, now: SimTime);

    /// Like [`on_round_barrier`](Self::on_round_barrier), but handed a [`HookOps`] view of
    /// the invoking engine, so the hook can drive application-level traffic (peer-sample
    /// draws, transfer accounting) through the engine it rides on. Both engines call this
    /// entry point; the default implementation ignores `ops` and forwards to
    /// [`on_round_barrier`](Self::on_round_barrier), so existing hooks are unaffected.
    ///
    /// Hooks that override this method and draw samples must be installed via
    /// [`SimulationEngine::set_sampled_round_hook`]; a hook installed with the plain
    /// [`SimulationEngine::set_round_hook`] sees [`HookOps::draw_sample`] return `None`
    /// (the engine has no sampling rule captured for it).
    fn on_round_barrier_with(&mut self, round: u64, now: SimTime, ops: &mut dyn HookOps) {
        let _ = ops;
        self.on_round_barrier(round, now);
    }
}

/// The engine services a [`RoundHook`] may use at a barrier, independent of the concrete
/// engine type (both [`Simulation`](crate::Simulation) and
/// [`ShardedSimulation`](crate::ShardedSimulation) implement it).
///
/// Every method runs on the coordinating thread at the barrier instant, after the
/// barrier's canonical merge — the same synchronisation point as the hook itself — so a
/// hook that only calls these methods observes identical state for any worker-thread
/// count. [`draw_sample`](Self::draw_sample) consumes the *target node's own* RNG stream
/// (the one its protocol callbacks use), which both engines keep canonically positioned
/// across thread counts; a hook draw therefore advances the same stream by the same
/// amount on every configuration, preserving bit-identity.
pub trait HookOps {
    /// Draws a peer sample from `node` via its protocol's sampling rule and its own RNG
    /// stream. Returns `None` when the node is dead, its view is empty, or the hook was
    /// installed without a sampling rule (plain
    /// [`set_round_hook`](SimulationEngine::set_round_hook)).
    fn draw_sample(&mut self, node: NodeId) -> Option<NodeId>;

    /// Returns `true` if `node` is currently alive.
    fn is_live(&self, node: NodeId) -> bool;

    /// Appends the ids of all live nodes to `out` in ascending id order (`out` is not
    /// cleared first).
    fn live_node_ids_into(&self, out: &mut Vec<NodeId>);

    /// Records an application-level transfer of `bytes` from `from` to `to` in the
    /// engine's traffic ledger (sender and receiver sides), so workload traffic shows up
    /// in [`SimulationEngine::traffic_snapshot`] next to protocol traffic.
    fn record_transfer(&mut self, from: NodeId, to: NodeId, bytes: usize);

    /// Records an application-level send by `from` that was blocked before delivery
    /// (NAT-filtered or fault-dropped) in the engine's traffic ledger.
    fn record_blocked(&mut self, from: NodeId);
}

/// A [`RoundHook`] that forwards each barrier to an ordered list of child hooks, so a run
/// can compose (say) a scripted NAT-dynamics executor with a dissemination workload: the
/// children fire in push order at every barrier, which keeps the composition
/// deterministic.
#[derive(Default)]
pub struct CompositeRoundHook {
    hooks: Vec<Box<dyn RoundHook>>,
}

impl CompositeRoundHook {
    /// Creates an empty composite.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends `hook`; at each barrier it runs after every previously pushed hook.
    pub fn push(&mut self, hook: Box<dyn RoundHook>) {
        self.hooks.push(hook);
    }

    /// Builder-style [`push`](Self::push).
    #[must_use]
    pub fn with(mut self, hook: Box<dyn RoundHook>) -> Self {
        self.push(hook);
        self
    }

    /// Number of child hooks.
    pub fn len(&self) -> usize {
        self.hooks.len()
    }

    /// Returns `true` when no child hooks are installed.
    pub fn is_empty(&self) -> bool {
        self.hooks.is_empty()
    }
}

impl RoundHook for CompositeRoundHook {
    fn on_round_barrier(&mut self, round: u64, now: SimTime) {
        for hook in &mut self.hooks {
            hook.on_round_barrier(round, now);
        }
    }

    fn on_round_barrier_with(&mut self, round: u64, now: SimTime, ops: &mut dyn HookOps) {
        for hook in &mut self.hooks {
            hook.on_round_barrier_with(round, now, ops);
        }
    }
}

/// An execution engine that can drive [`Protocol`] state machines.
pub trait SimulationEngine<P: Protocol> {
    /// Creates an engine with the given configuration and the default network models.
    fn from_config(cfg: SimulationConfig) -> Self
    where
        Self: Sized;

    /// Replaces the latency model. `Send + Sync` is required because the sharded engine
    /// samples latencies from its worker threads.
    fn set_latency_model<L: LatencyModel + Send + Sync + 'static>(&mut self, model: L);

    /// Replaces the loss model. `Send + Sync` is required because the sharded engine makes
    /// loss decisions from its worker threads.
    fn set_loss_model<L: LossModel + Send + Sync + 'static>(&mut self, model: L);

    /// Replaces the delivery filter (NAT/firewall emulation). Both engines consult the
    /// filter from the coordinating thread only, so `Send`/`Sync` are not needed.
    fn set_delivery_filter<D: DeliveryFilter + 'static>(&mut self, filter: D);

    /// Installs a [`RoundHook`] invoked at every future round barrier. Replaces any
    /// previously installed hook. Like the delivery filter, the hook runs on the
    /// coordinating thread only.
    fn set_round_hook(&mut self, hook: Box<dyn RoundHook>);

    /// Installs a [`RoundHook`] like [`set_round_hook`](Self::set_round_hook), but also
    /// captures the protocol's peer-sampling rule so the hook's
    /// [`HookOps::draw_sample`] calls work. Use this for hooks that override
    /// [`RoundHook::on_round_barrier_with`] and generate application traffic (the
    /// dissemination workload engine); plain scripted hooks can keep the cheaper
    /// [`set_round_hook`](Self::set_round_hook).
    fn set_sampled_round_hook(&mut self, hook: Box<dyn RoundHook>)
    where
        P: PssNode;

    /// Installs a [`FaultPlane`] on the delivery path. Both engines judge messages
    /// against the plane on the coordinating thread, in canonical message order, so
    /// injected faults preserve the engines' determinism guarantees.
    fn set_fault_plane(&mut self, plane: FaultPlane);

    /// The fault plane's injection counters ([`FaultReport::default`] when no plane is
    /// installed).
    fn fault_report(&self) -> FaultReport;

    /// The engine configuration.
    fn config(&self) -> &SimulationConfig;

    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Number of live nodes.
    fn len(&self) -> usize;

    /// Returns `true` when the engine holds no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `node` is currently alive.
    fn contains(&self, node: NodeId) -> bool;

    /// Registers `node` with the bootstrap server.
    fn register_public(&mut self, node: NodeId);

    /// Adds a node running `proto`.
    fn add_node(&mut self, id: NodeId, proto: P);

    /// Removes a node, returning its protocol state.
    fn remove_node(&mut self, id: NodeId) -> Option<P>;

    /// Runs the simulation until the virtual clock reaches `deadline`.
    fn run_until(&mut self, deadline: SimTime);

    /// Runs the simulation for `span` of virtual time from the current instant.
    fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }

    /// Runs the simulation for `rounds` gossip periods from the current instant.
    fn run_for_rounds(&mut self, rounds: u64) {
        self.run_for(self.config().round_period.saturating_mul(rounds));
    }

    /// Invokes `f` once per live node, in ascending node-id order within each storage
    /// stripe (the exact global order is unspecified; callers needing a canonical order
    /// sort what they collect, as [`OverlaySnapshot`] does).
    ///
    /// [`OverlaySnapshot`]: https://docs.rs/croupier-metrics
    fn for_each_node(&self, f: &mut dyn FnMut(NodeId, &P));

    /// Exclusive upper bound on the raw ids of live nodes: every live node's id is
    /// strictly below this value, and the bound only grows over the engine's lifetime.
    ///
    /// This is the dense-index capture path: both engines store node state in
    /// [`NodeArena`](crate::arena::NodeArena) stripes addressed by the raw id, so the
    /// bound is simply the arena's slot count (times the stripe count for the sharded
    /// engine). Snapshot capture and the CSR metrics pipeline use it to size dense
    /// id-indexed side tables, turning every `NodeId → index` resolution into one array
    /// load instead of a hash or tree lookup per edge.
    fn node_id_upper_bound(&self) -> u64;

    /// Aggregated message delivery statistics.
    fn network_stats(&self) -> NetworkStats;

    /// A merged copy of the per-node traffic ledger.
    fn traffic_snapshot(&self) -> TrafficLedger;

    /// Merges the per-node traffic ledger into `out` (cleared first, map capacity
    /// retained). Callers that sample traffic repeatedly should keep one ledger alive and
    /// use this instead of [`traffic_snapshot`](Self::traffic_snapshot), which clones a
    /// fresh ledger per call; both engines override the default with an allocation-free
    /// merge.
    fn traffic_snapshot_into(&self, out: &mut TrafficLedger) {
        *out = self.traffic_snapshot();
    }

    /// Clears all traffic counters and restarts the measurement window at the current time.
    fn reset_traffic_window(&mut self);

    /// Draws a peer sample from `node` using the node's own random stream.
    fn draw_sample(&mut self, node: NodeId) -> Option<NodeId>
    where
        P: PssNode;
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    /// A do-nothing engine view, so hook composition is testable without an engine.
    struct NoOps;

    impl HookOps for NoOps {
        fn draw_sample(&mut self, _node: NodeId) -> Option<NodeId> {
            None
        }
        fn is_live(&self, _node: NodeId) -> bool {
            false
        }
        fn live_node_ids_into(&self, _out: &mut Vec<NodeId>) {}
        fn record_transfer(&mut self, _from: NodeId, _to: NodeId, _bytes: usize) {}
        fn record_blocked(&mut self, _from: NodeId) {}
    }

    /// Implements only the plain entry point, so the default `on_round_barrier_with`
    /// forwarding is under test too.
    struct Tag(u32, Rc<RefCell<Vec<u32>>>);

    impl RoundHook for Tag {
        fn on_round_barrier(&mut self, _round: u64, _now: SimTime) {
            self.1.borrow_mut().push(self.0);
        }
    }

    #[test]
    fn composite_fires_children_in_push_order_through_both_entry_points() {
        let log = Rc::new(RefCell::new(Vec::new()));
        let mut composite = CompositeRoundHook::new()
            .with(Box::new(Tag(1, Rc::clone(&log))))
            .with(Box::new(Tag(2, Rc::clone(&log))));
        assert_eq!(composite.len(), 2);
        assert!(!composite.is_empty());
        composite.on_round_barrier(1, SimTime::from_secs(1));
        composite.on_round_barrier_with(2, SimTime::from_secs(2), &mut NoOps);
        assert_eq!(
            log.borrow().as_slice(),
            &[1, 2, 1, 2],
            "children must fire in push order from both entry points, with the \
             default _with implementation forwarding to the plain hook"
        );
    }

    #[test]
    fn an_empty_composite_is_inert() {
        let mut composite = CompositeRoundHook::new();
        assert!(composite.is_empty());
        assert_eq!(composite.len(), 0);
        composite.on_round_barrier_with(1, SimTime::from_secs(1), &mut NoOps);
    }
}
