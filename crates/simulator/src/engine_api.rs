//! The common surface of the two execution engines.
//!
//! [`SimulationEngine`] abstracts over the event-driven [`Simulation`](crate::Simulation)
//! and the phase-parallel [`ShardedSimulation`](crate::ShardedSimulation) so that the
//! experiment driver and the metrics crate can run any protocol on either engine without
//! special-casing. The trait deliberately exposes *snapshot*-style accessors (owned
//! [`TrafficLedger`], callback-based node iteration) because the sharded engine keeps its
//! state split across shards and has no single borrow to hand out.
//!
//! This trait is the *driver-facing* half of the engine seam. The *protocol-facing* half
//! is [`Transport`](crate::Transport): both engines hand protocol callbacks a
//! [`Context`](crate::Context) built over their own transport implementation, so protocol
//! crates depend on neither engine type. See DESIGN.md §13 for the seam's determinism
//! argument.

use crate::engine::{NetworkStats, SimulationConfig};
use crate::faults::{FaultPlane, FaultReport};
use crate::latency::LatencyModel;
use crate::loss::LossModel;
use crate::network::DeliveryFilter;
use crate::protocol::{Protocol, PssNode};
use crate::time::{SimDuration, SimTime};
use crate::traffic::TrafficLedger;
use crate::types::NodeId;

/// A callback invoked by an engine at every gossip-round barrier.
///
/// Round barriers are the instants `n * round_period` (`n >= 1`). Both engines guarantee
/// the same observation point: when the hook runs, every event scheduled *strictly
/// before* the barrier instant has executed and no event scheduled *at or after* it has.
/// In the sharded engine the hook additionally runs after the barrier's canonical
/// cross-shard merge, and always on the coordinating thread — so a hook that mutates
/// shared state (the scripted NAT-dynamics executor mutating the `NatTopology` behind the
/// delivery filter) observes and produces the same state for any worker-thread count,
/// preserving the engine's bit-identity guarantee.
///
/// Hooks fire only for barriers after their installation; installing a hook mid-run never
/// replays past rounds.
pub trait RoundHook {
    /// Called at the barrier that closes gossip round `round` (1-based), i.e. at virtual
    /// time `now = round * round_period`.
    fn on_round_barrier(&mut self, round: u64, now: SimTime);
}

/// An execution engine that can drive [`Protocol`] state machines.
pub trait SimulationEngine<P: Protocol> {
    /// Creates an engine with the given configuration and the default network models.
    fn from_config(cfg: SimulationConfig) -> Self
    where
        Self: Sized;

    /// Replaces the latency model. `Send + Sync` is required because the sharded engine
    /// samples latencies from its worker threads.
    fn set_latency_model<L: LatencyModel + Send + Sync + 'static>(&mut self, model: L);

    /// Replaces the loss model. `Send + Sync` is required because the sharded engine makes
    /// loss decisions from its worker threads.
    fn set_loss_model<L: LossModel + Send + Sync + 'static>(&mut self, model: L);

    /// Replaces the delivery filter (NAT/firewall emulation). Both engines consult the
    /// filter from the coordinating thread only, so `Send`/`Sync` are not needed.
    fn set_delivery_filter<D: DeliveryFilter + 'static>(&mut self, filter: D);

    /// Installs a [`RoundHook`] invoked at every future round barrier. Replaces any
    /// previously installed hook. Like the delivery filter, the hook runs on the
    /// coordinating thread only.
    fn set_round_hook(&mut self, hook: Box<dyn RoundHook>);

    /// Installs a [`FaultPlane`] on the delivery path. Both engines judge messages
    /// against the plane on the coordinating thread, in canonical message order, so
    /// injected faults preserve the engines' determinism guarantees.
    fn set_fault_plane(&mut self, plane: FaultPlane);

    /// The fault plane's injection counters ([`FaultReport::default`] when no plane is
    /// installed).
    fn fault_report(&self) -> FaultReport;

    /// The engine configuration.
    fn config(&self) -> &SimulationConfig;

    /// Current simulated time.
    fn now(&self) -> SimTime;

    /// Number of live nodes.
    fn len(&self) -> usize;

    /// Returns `true` when the engine holds no nodes.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns `true` if `node` is currently alive.
    fn contains(&self, node: NodeId) -> bool;

    /// Registers `node` with the bootstrap server.
    fn register_public(&mut self, node: NodeId);

    /// Adds a node running `proto`.
    fn add_node(&mut self, id: NodeId, proto: P);

    /// Removes a node, returning its protocol state.
    fn remove_node(&mut self, id: NodeId) -> Option<P>;

    /// Runs the simulation until the virtual clock reaches `deadline`.
    fn run_until(&mut self, deadline: SimTime);

    /// Runs the simulation for `span` of virtual time from the current instant.
    fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now() + span;
        self.run_until(deadline);
    }

    /// Runs the simulation for `rounds` gossip periods from the current instant.
    fn run_for_rounds(&mut self, rounds: u64) {
        self.run_for(self.config().round_period.saturating_mul(rounds));
    }

    /// Invokes `f` once per live node, in ascending node-id order within each storage
    /// stripe (the exact global order is unspecified; callers needing a canonical order
    /// sort what they collect, as [`OverlaySnapshot`] does).
    ///
    /// [`OverlaySnapshot`]: https://docs.rs/croupier-metrics
    fn for_each_node(&self, f: &mut dyn FnMut(NodeId, &P));

    /// Exclusive upper bound on the raw ids of live nodes: every live node's id is
    /// strictly below this value, and the bound only grows over the engine's lifetime.
    ///
    /// This is the dense-index capture path: both engines store node state in
    /// [`NodeArena`](crate::arena::NodeArena) stripes addressed by the raw id, so the
    /// bound is simply the arena's slot count (times the stripe count for the sharded
    /// engine). Snapshot capture and the CSR metrics pipeline use it to size dense
    /// id-indexed side tables, turning every `NodeId → index` resolution into one array
    /// load instead of a hash or tree lookup per edge.
    fn node_id_upper_bound(&self) -> u64;

    /// Aggregated message delivery statistics.
    fn network_stats(&self) -> NetworkStats;

    /// A merged copy of the per-node traffic ledger.
    fn traffic_snapshot(&self) -> TrafficLedger;

    /// Merges the per-node traffic ledger into `out` (cleared first, map capacity
    /// retained). Callers that sample traffic repeatedly should keep one ledger alive and
    /// use this instead of [`traffic_snapshot`](Self::traffic_snapshot), which clones a
    /// fresh ledger per call; both engines override the default with an allocation-free
    /// merge.
    fn traffic_snapshot_into(&self, out: &mut TrafficLedger) {
        *out = self.traffic_snapshot();
    }

    /// Clears all traffic counters and restarts the measurement window at the current time.
    fn reset_traffic_window(&mut self);

    /// Draws a peer sample from `node` using the node's own random stream.
    fn draw_sample(&mut self, node: NodeId) -> Option<NodeId>
    where
        P: PssNode;
}
