//! The protocol abstraction driven by the engine.
//!
//! A protocol is a per-node state machine reacting to three kinds of events: the start of
//! its periodic gossip round, the delivery of a message, and the expiry of a timer it set
//! itself. All interaction with the outside world goes through the [`Context`] handed to
//! each callback, which keeps protocols completely deterministic and trivially testable
//! without an engine.

use rand::rngs::SmallRng;

use crate::time::{SimDuration, SimTime};
use crate::transport::Transport;
use crate::types::{NatClass, NodeId};

/// Identifies a timer set by a protocol so the protocol can tell its timers apart.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug, Default)]
pub struct TimerKey(u64);

impl TimerKey {
    /// Creates a timer key from a raw value chosen by the protocol.
    pub const fn new(raw: u64) -> Self {
        TimerKey(raw)
    }

    /// The raw value of the key.
    pub const fn as_u64(self) -> u64 {
        self.0
    }
}

/// Measures the on-the-wire size of a message in bytes.
///
/// The size should include transport headers so that overhead experiments report realistic
/// byte counts; the Croupier crates use 28 bytes of UDP/IPv4 header plus payload.
pub trait WireSize {
    /// Serialized size of the message in bytes, including headers.
    fn wire_size(&self) -> usize;

    /// Corrupts the message in place, as a truncated or bit-flipped datagram would
    /// deserialize (drop list entries, scramble identifiers and enum fields, …), drawing
    /// any randomness from `rng`.
    ///
    /// Called by the engines when the [`FaultPlane`](crate::FaultPlane) decides to
    /// corrupt a payload. The default is a no-op (corruption injection silently does
    /// nothing for message types that opt out); protocol crates override it so the fuzz
    /// and fault scenarios exercise their decode-hardening paths. Implementations must
    /// keep the message *structurally* valid — corruption models damage the engines'
    /// typed channel can express, not arbitrary memory.
    fn fault_mutate(&mut self, rng: &mut SmallRng) {
        let _ = rng;
    }
}

/// A message queued for sending by a protocol callback.
#[derive(Clone, Debug, PartialEq)]
pub struct Outgoing<M> {
    /// Destination node.
    pub to: NodeId,
    /// Message payload.
    pub msg: M,
}

/// A timer requested by a protocol callback.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TimerRequest {
    /// How long from now the timer should fire.
    pub delay: SimDuration,
    /// Key passed back to [`Protocol::on_timer`].
    pub key: TimerKey,
}

/// The execution context given to every protocol callback.
///
/// A thin facade over the [`Transport`] seam: every capability it exposes — identity,
/// clock, the node's private random stream, sending, timers, bootstrap sampling — is
/// forwarded verbatim to the underlying transport. Protocols therefore compile against
/// the trait alone and run unchanged on any transport implementation; the engines back it
/// with [`SimTransport`](crate::SimTransport), which records effects into recycled
/// buffers. The facade adds no state and draws no randomness of its own, which is what
/// makes the seam provably behavior-preserving (see DESIGN.md §13).
pub struct Context<'a, M> {
    transport: &'a mut dyn Transport<M>,
}

impl<'a, M> Context<'a, M> {
    /// Wraps a transport for the duration of one protocol callback.
    pub fn new(transport: &'a mut dyn Transport<M>) -> Self {
        Context { transport }
    }

    /// Identity of the node executing the callback.
    pub fn node_id(&self) -> NodeId {
        self.transport.node_id()
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.transport.now()
    }

    /// The gossip round period configured on the engine.
    pub fn round_period(&self) -> SimDuration {
        self.transport.round_period()
    }

    /// The node's private random number generator.
    pub fn rng(&mut self) -> &mut SmallRng {
        self.transport.rng()
    }

    /// Queues `msg` for sending to `to`.
    pub fn send(&mut self, to: NodeId, msg: M) {
        self.transport.send(to, msg);
    }

    /// Requests a timer that fires after `delay`, identified by `key`.
    pub fn set_timer(&mut self, delay: SimDuration, key: TimerKey) {
        self.transport.set_timer(delay, key);
    }

    /// Samples up to `count` public nodes from the bootstrap server, excluding the caller.
    pub fn bootstrap_sample(&mut self, count: usize) -> Vec<NodeId> {
        self.transport.bootstrap_sample(count)
    }

    /// Messages queued so far (used by tests driving a protocol without the engine).
    pub fn outbox(&self) -> &[Outgoing<M>] {
        self.transport.outbox()
    }
}

/// A per-node protocol state machine.
///
/// Implementations must be deterministic given the context's random stream: they must not
/// consult global state, wall-clock time or thread-local RNGs.
pub trait Protocol: Sized {
    /// The message type exchanged by this protocol.
    type Message: Clone + std::fmt::Debug + WireSize;

    /// Invoked once when the node joins the simulation.
    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>);

    /// Invoked at the start of each of the node's periodic gossip rounds.
    fn on_round(&mut self, ctx: &mut Context<'_, Self::Message>);

    /// Invoked when a message from `from` is delivered to this node.
    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    );

    /// Invoked when a timer set through [`Context::set_timer`] fires.
    fn on_timer(&mut self, _key: TimerKey, _ctx: &mut Context<'_, Self::Message>) {}
}

/// A peer-sampling protocol as seen by the evaluation harness.
///
/// Every PSS in the workspace (Croupier, Cyclon, Nylon, Gozar) implements this trait so the
/// metrics and experiment crates can treat them uniformly.
pub trait PssNode: Protocol {
    /// The node's connectivity class.
    fn nat_class(&self) -> NatClass;

    /// The node identifiers currently present in the node's partial view(s); these are the
    /// outgoing edges of the overlay graph.
    fn known_peers(&self) -> Vec<NodeId>;

    /// Invokes `visit` once per known peer, in the same order as
    /// [`known_peers`](PssNode::known_peers) but without materialising a `Vec`.
    ///
    /// Snapshot capture calls this once per node per metrics sample, so protocols whose
    /// views can be iterated in place should override the default (which delegates to
    /// `known_peers` and therefore still allocates).
    fn for_each_known_peer(&self, visit: &mut dyn FnMut(NodeId)) {
        for peer in self.known_peers() {
            visit(peer);
        }
    }

    /// The node's current estimate of the public/private ratio, if the protocol computes
    /// one (only Croupier does).
    fn ratio_estimate(&self) -> Option<f64> {
        None
    }

    /// Draws one peer sample, following the protocol's sampling rule.
    fn draw_sample(&mut self, rng: &mut SmallRng) -> Option<NodeId>;

    /// Number of gossip rounds this node has executed since it joined.
    fn rounds_executed(&self) -> u64;

    /// Number of exchange retries this node has fired after a timeout. Protocols without
    /// timeout/retry hardening report zero.
    fn retries_fired(&self) -> u64 {
        0
    }

    /// Number of exchanges this node has abandoned: retry budget exhausted, or an
    /// unanswered exchange displaced by a newer one. Protocols without exchange
    /// bookkeeping report zero.
    fn exchanges_abandoned(&self) -> u64 {
        0
    }
}

/// Helper: draw a random subset of `count` distinct elements from `items`.
///
/// The order of the returned subset is random. If `count >= items.len()` a shuffled copy of
/// the whole slice is returned. Implemented as a partial Fisher–Yates over indices, so it
/// draws only `min(count, len)` random numbers and never clones elements beyond the
/// returned subset.
pub fn random_subset<T: Clone>(items: &[T], count: usize, rng: &mut SmallRng) -> Vec<T> {
    let picked = rand::seq::index::sample(rng, items.len(), count.min(items.len()));
    picked.into_iter().map(|i| items[i].clone()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bootstrap::BootstrapRegistry;
    use crate::transport::{ContextParams, SimTransport};
    use rand::SeedableRng;

    #[derive(Clone, Debug, PartialEq)]
    struct TestMsg(u32);

    impl WireSize for TestMsg {
        fn wire_size(&self) -> usize {
            32
        }
    }

    #[test]
    fn context_collects_messages_and_timers() {
        let bootstrap = BootstrapRegistry::new();
        let mut rng = SmallRng::seed_from_u64(1);
        let mut transport: SimTransport<'_, TestMsg> = SimTransport::new(ContextParams {
            node: NodeId::new(1),
            now: SimTime::from_millis(10),
            round_period: SimDuration::from_secs(1),
            rng: &mut rng,
            bootstrap: &bootstrap,
        });
        {
            let mut ctx = Context::new(&mut transport);
            ctx.send(NodeId::new(2), TestMsg(7));
            ctx.set_timer(SimDuration::from_millis(100), TimerKey::new(3));
            assert_eq!(ctx.node_id(), NodeId::new(1));
            assert_eq!(ctx.now(), SimTime::from_millis(10));
            assert_eq!(ctx.round_period(), SimDuration::from_secs(1));
        }
        let (outbox, timers) = transport.into_effects();
        assert_eq!(outbox.len(), 1);
        assert_eq!(outbox[0].to, NodeId::new(2));
        assert_eq!(outbox[0].msg, TestMsg(7));
        assert_eq!(
            timers,
            vec![TimerRequest {
                delay: SimDuration::from_millis(100),
                key: TimerKey::new(3)
            }]
        );
    }

    #[test]
    fn bootstrap_sample_excludes_self() {
        let mut bootstrap = BootstrapRegistry::new();
        bootstrap.register(NodeId::new(1));
        bootstrap.register(NodeId::new(2));
        let mut rng = SmallRng::seed_from_u64(2);
        let mut transport: SimTransport<'_, TestMsg> = SimTransport::new(ContextParams {
            node: NodeId::new(1),
            now: SimTime::ZERO,
            round_period: SimDuration::from_secs(1),
            rng: &mut rng,
            bootstrap: &bootstrap,
        });
        let mut ctx = Context::new(&mut transport);
        let sample = ctx.bootstrap_sample(5);
        assert_eq!(sample, vec![NodeId::new(2)]);
    }

    #[test]
    fn random_subset_respects_count_and_membership() {
        let items: Vec<u32> = (0..20).collect();
        let mut rng = SmallRng::seed_from_u64(3);
        let subset = random_subset(&items, 5, &mut rng);
        assert_eq!(subset.len(), 5);
        assert!(subset.iter().all(|v| items.contains(v)));
        // Distinctness.
        let mut sorted = subset.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 5);
    }

    #[test]
    fn random_subset_larger_than_input_returns_all() {
        let items = vec![1, 2, 3];
        let mut rng = SmallRng::seed_from_u64(4);
        let mut subset = random_subset(&items, 10, &mut rng);
        subset.sort_unstable();
        assert_eq!(subset, vec![1, 2, 3]);
    }

    #[test]
    fn timer_key_roundtrip() {
        assert_eq!(TimerKey::new(9).as_u64(), 9);
    }
}
