//! Deterministic random number generation.
//!
//! The whole workspace derives every random decision from a single [`Seed`]. The seed is
//! split into independent per-node and per-subsystem streams with a SplitMix64 hash so that
//! adding a node or reordering subsystem initialisation does not perturb the streams of
//! unrelated components — a property the reproducibility of the experiments relies on.

use rand::rngs::SmallRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

use crate::types::NodeId;

/// Master seed of a simulation run.
///
/// # Examples
///
/// ```
/// use croupier_simulator::{NodeId, Seed};
///
/// let seed = Seed::new(42);
/// let mut a = seed.node_rng(NodeId::new(1));
/// let mut b = seed.node_rng(NodeId::new(1));
/// // The same node always receives the same stream...
/// assert_eq!(rand::Rng::gen::<u64>(&mut a), rand::Rng::gen::<u64>(&mut b));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug, Serialize, Deserialize)]
pub struct Seed(u64);

/// Stable labels for engine-internal random streams.
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub enum Stream {
    /// Network latency sampling.
    Latency,
    /// Message loss decisions.
    Loss,
    /// Round phase jitter and clock skew.
    Scheduling,
    /// Bootstrap server sampling.
    Bootstrap,
    /// Scenario/workload generation (joins, churn, failures).
    Workload,
    /// Anything an experiment wants outside the predefined streams.
    Custom(u64),
}

impl Stream {
    fn tag(self) -> u64 {
        match self {
            Stream::Latency => 0x4c41_5445,
            Stream::Loss => 0x4c4f_5353,
            Stream::Scheduling => 0x5343_4845,
            Stream::Bootstrap => 0x424f_4f54,
            Stream::Workload => 0x574f_524b,
            Stream::Custom(v) => 0x4355_5354_0000_0000 ^ v,
        }
    }
}

/// SplitMix64 finalizer; fast, well distributed, and good enough for seeding.
pub(crate) fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = x;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

impl Seed {
    /// Creates a master seed from a raw value.
    pub const fn new(raw: u64) -> Self {
        Seed(raw)
    }

    /// Raw value of the seed.
    pub const fn as_u64(self) -> u64 {
        self.0
    }

    /// Derives a child seed for a named stream.
    pub fn derive(self, stream: Stream) -> Seed {
        Seed(splitmix64(self.0 ^ splitmix64(stream.tag())))
    }

    /// Derives a child seed for a node-specific stream.
    pub fn derive_for_node(self, node: NodeId) -> Seed {
        Seed(splitmix64(
            self.0 ^ splitmix64(node.as_u64().wrapping_add(0x4e4f_4445)),
        ))
    }

    /// Builds the random number generator for a named stream.
    pub fn stream_rng(self, stream: Stream) -> SmallRng {
        SmallRng::seed_from_u64(self.derive(stream).0)
    }

    /// Builds the random number generator owned by a node's protocol instance.
    pub fn node_rng(self, node: NodeId) -> SmallRng {
        SmallRng::seed_from_u64(self.derive_for_node(node).0)
    }

    /// Builds a generator for a *per-node* engine-internal stream.
    ///
    /// The sharded engine gives every node its own latency/loss and scheduling streams
    /// (instead of the event engine's shared per-subsystem streams) so that the order in
    /// which nodes execute within a phase cannot perturb anyone else's randomness — the
    /// property that makes phase-parallel runs bit-identical across worker counts.
    pub fn node_stream_rng(self, node: NodeId, stream: Stream) -> SmallRng {
        SmallRng::seed_from_u64(self.derive_for_node(node).derive(stream).0)
    }

    /// Builds a generator directly from the seed; used where only one stream exists.
    pub fn rng(self) -> SmallRng {
        SmallRng::seed_from_u64(self.0)
    }
}

impl Default for Seed {
    fn default() -> Self {
        Seed(0xC0FF_EE00_5EED_1234)
    }
}

impl From<u64> for Seed {
    fn from(raw: u64) -> Self {
        Seed(raw)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn same_seed_same_stream_is_deterministic() {
        let s = Seed::new(1);
        let a: Vec<u64> = (0..8)
            .map({
                let mut r = s.stream_rng(Stream::Latency);
                move |_| r.gen()
            })
            .collect();
        let b: Vec<u64> = (0..8)
            .map({
                let mut r = s.stream_rng(Stream::Latency);
                move |_| r.gen()
            })
            .collect();
        assert_eq!(a, b);
    }

    #[test]
    fn different_streams_are_independent() {
        let s = Seed::new(1);
        let a: u64 = s.stream_rng(Stream::Latency).gen();
        let b: u64 = s.stream_rng(Stream::Loss).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_nodes_get_different_streams() {
        let s = Seed::new(9);
        let a: u64 = s.node_rng(NodeId::new(1)).gen();
        let b: u64 = s.node_rng(NodeId::new(2)).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn different_master_seeds_diverge() {
        let a: u64 = Seed::new(1).node_rng(NodeId::new(5)).gen();
        let b: u64 = Seed::new(2).node_rng(NodeId::new(5)).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn node_stream_rngs_are_deterministic_and_independent() {
        let s = Seed::new(21);
        let a: u64 = s.node_stream_rng(NodeId::new(3), Stream::Latency).gen();
        let b: u64 = s.node_stream_rng(NodeId::new(3), Stream::Latency).gen();
        assert_eq!(a, b, "same node and stream must reproduce");
        let c: u64 = s.node_stream_rng(NodeId::new(3), Stream::Scheduling).gen();
        let d: u64 = s.node_stream_rng(NodeId::new(4), Stream::Latency).gen();
        assert_ne!(a, c, "streams of one node must differ");
        assert_ne!(a, d, "same stream of different nodes must differ");
        let e: u64 = s.node_rng(NodeId::new(3)).gen();
        assert_ne!(a, e, "node protocol stream must differ from engine streams");
    }

    #[test]
    fn custom_streams_with_distinct_tags_differ() {
        let s = Seed::new(77);
        let a: u64 = s.stream_rng(Stream::Custom(1)).gen();
        let b: u64 = s.stream_rng(Stream::Custom(2)).gen();
        assert_ne!(a, b);
    }

    #[test]
    fn splitmix_is_not_identity() {
        assert_ne!(splitmix64(0), 0);
        assert_ne!(splitmix64(1), 1);
    }

    #[test]
    fn default_seed_is_stable() {
        assert_eq!(Seed::default(), Seed::default());
        assert_eq!(Seed::from(5u64).as_u64(), 5);
    }
}
