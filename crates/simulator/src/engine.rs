//! The discrete-event simulation engine.

use rand::rngs::SmallRng;
use rand::Rng;

use crate::arena::NodeArena;
use crate::bootstrap::BootstrapRegistry;
use crate::engine_api::{HookOps, RoundHook};
use crate::event::Event;
use crate::faults::{FaultPlane, FaultReport};
use crate::latency::{KingLatencyModel, LatencyModel};
use crate::loss::{LossModel, NoLoss};
use crate::network::{DeliveryFilter, DeliveryVerdict, OpenInternet};
use crate::protocol::{Context, Outgoing, Protocol, PssNode, TimerRequest, WireSize};
use crate::rng::{Seed, Stream};
use crate::scheduler::EventQueue;
use crate::time::{SimDuration, SimTime};
use crate::traffic::TrafficLedger;
use crate::transport::{ContextParams, SimTransport};
use crate::types::NodeId;

/// Configuration of a simulation run.
///
/// # Examples
///
/// ```
/// use croupier_simulator::{SimulationConfig, SimDuration};
///
/// let cfg = SimulationConfig::default()
///     .with_seed(1)
///     .with_round_period(SimDuration::from_secs(1))
///     .with_round_jitter(0.05);
/// assert_eq!(cfg.round_period, SimDuration::from_secs(1));
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct SimulationConfig {
    /// Master seed for all random streams.
    pub seed: Seed,
    /// Gossip round period (the paper uses one second).
    pub round_period: SimDuration,
    /// Clock-skew modelled as a uniform fractional jitter applied to each node's round
    /// period (0.05 means each round fires within ±5 % of the nominal period).
    pub round_jitter: f64,
    /// Whether nodes start their first round at a random phase within one period of their
    /// join time (decorrelates rounds, as on a real deployment).
    pub random_phase: bool,
    /// Number of worker threads used by the sharded engine
    /// ([`ShardedSimulation`](crate::ShardedSimulation)); the event-driven engine ignores
    /// it. Values below one are treated as one.
    pub engine_threads: usize,
}

impl Default for SimulationConfig {
    fn default() -> Self {
        SimulationConfig {
            seed: Seed::default(),
            round_period: SimDuration::from_secs(1),
            round_jitter: 0.02,
            random_phase: true,
            engine_threads: 1,
        }
    }
}

impl SimulationConfig {
    /// Replaces the master seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = Seed::new(seed);
        self
    }

    /// Replaces the gossip round period.
    pub fn with_round_period(mut self, period: SimDuration) -> Self {
        self.round_period = period;
        self
    }

    /// Replaces the clock-skew jitter fraction.
    ///
    /// # Panics
    ///
    /// Panics if `jitter` is negative or not finite.
    pub fn with_round_jitter(mut self, jitter: f64) -> Self {
        assert!(
            jitter.is_finite() && jitter >= 0.0,
            "jitter must be a non-negative number"
        );
        self.round_jitter = jitter;
        self
    }

    /// Enables or disables random initial round phase.
    pub fn with_random_phase(mut self, random_phase: bool) -> Self {
        self.random_phase = random_phase;
        self
    }

    /// Sets the number of worker threads for the sharded engine.
    pub fn with_engine_threads(mut self, threads: usize) -> Self {
        self.engine_threads = threads;
        self
    }
}

/// Counters describing what happened to the messages handed to the network.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct NetworkStats {
    /// Messages delivered to their destination.
    pub delivered: u64,
    /// Messages dropped by the loss model.
    pub lost: u64,
    /// Messages filtered by a NAT or firewall.
    pub blocked_by_nat: u64,
    /// Messages whose destination had left the system.
    pub destination_gone: u64,
}

impl NetworkStats {
    /// Total number of messages handed to the network.
    pub fn total(&self) -> u64 {
        self.delivered + self.lost + self.blocked_by_nat + self.destination_gone
    }

    /// Adds the counters of `other` into this one; used to aggregate per-shard statistics.
    pub fn merge(&mut self, other: NetworkStats) {
        self.delivered += other.delivered;
        self.lost += other.lost;
        self.blocked_by_nat += other.blocked_by_nat;
        self.destination_gone += other.destination_gone;
    }
}

struct NodeSlot<P> {
    id: NodeId,
    proto: P,
    rng: SmallRng,
    joined_at: SimTime,
}

/// Arena index of a node id (the raw id itself; ids are dense by convention).
fn slot_index(id: NodeId) -> usize {
    id.as_u64() as usize
}

/// The discrete-event simulation engine.
///
/// The engine owns every node's protocol instance, the event queue, the network models and
/// the traffic ledger. Node state lives in a flat dense [`NodeArena`] indexed by the raw
/// node id, so the per-event lookup on the hot path is a direct indexed load; node ids
/// should therefore be assigned densely from zero (experiments already do). See the
/// crate-level documentation for a full example.
pub struct Simulation<P: Protocol> {
    cfg: SimulationConfig,
    now: SimTime,
    queue: EventQueue<P::Message>,
    nodes: NodeArena<NodeSlot<P>>,
    latency: Box<dyn LatencyModel>,
    loss: Box<dyn LossModel>,
    filter: Box<dyn DeliveryFilter>,
    bootstrap: BootstrapRegistry,
    traffic: TrafficLedger,
    latency_rng: SmallRng,
    loss_rng: SmallRng,
    sched_rng: SmallRng,
    stats: NetworkStats,
    /// Recycled effect buffers threaded through every protocol callback (see
    /// [`Context::with_buffers`]); their capacity persists across events, so the
    /// per-event effect collection allocates nothing in steady state.
    outbox_buf: Vec<Outgoing<P::Message>>,
    timers_buf: Vec<TimerRequest>,
    /// Fault-injection plane, if installed; judged per outgoing message in event order
    /// (which is already canonical for this engine).
    faults: Option<FaultPlane>,
    /// Round-barrier hook, if installed; `None` keeps [`run_until`](Self::run_until) on
    /// the original barrier-free hot loop.
    hook: Option<Box<dyn RoundHook>>,
    /// The protocol's peer-sampling rule, captured (monomorphised where `P: PssNode`
    /// holds) by [`set_sampled_round_hook`](Self::set_sampled_round_hook) so the
    /// `P: Protocol`-only barrier loop can serve [`HookOps::draw_sample`].
    hook_sampler: Option<fn(&mut P, &mut SmallRng) -> Option<NodeId>>,
    /// Index of the last barrier handed to the hook (barrier `n` fires at `n * period`).
    barriers_fired: u64,
}

impl<P: Protocol> Simulation<P> {
    /// Creates an engine with the given configuration, a King-like latency model, no message
    /// loss and no NAT filtering. Use the `set_*` methods to replace the network models.
    pub fn new(cfg: SimulationConfig) -> Self {
        Simulation {
            cfg,
            now: SimTime::ZERO,
            queue: EventQueue::new(),
            nodes: NodeArena::new(),
            latency: Box::new(KingLatencyModel::new()),
            loss: Box::new(NoLoss),
            filter: Box::new(OpenInternet),
            bootstrap: BootstrapRegistry::new(),
            traffic: TrafficLedger::new(),
            latency_rng: cfg.seed.stream_rng(Stream::Latency),
            loss_rng: cfg.seed.stream_rng(Stream::Loss),
            sched_rng: cfg.seed.stream_rng(Stream::Scheduling),
            stats: NetworkStats::default(),
            outbox_buf: Vec::new(),
            timers_buf: Vec::new(),
            faults: None,
            hook: None,
            hook_sampler: None,
            barriers_fired: 0,
        }
    }

    /// Replaces the latency model.
    pub fn set_latency_model(&mut self, model: impl LatencyModel + 'static) {
        self.latency = Box::new(model);
    }

    /// Replaces the loss model.
    pub fn set_loss_model(&mut self, model: impl LossModel + 'static) {
        self.loss = Box::new(model);
    }

    /// Replaces the delivery filter (NAT/firewall emulation).
    pub fn set_delivery_filter(&mut self, filter: impl DeliveryFilter + 'static) {
        self.filter = Box::new(filter);
    }

    /// Installs a [`FaultPlane`] on the delivery path. The engine judges every outgoing
    /// message against the plane (after the loss model) in event order; an inactive plane
    /// costs one atomic load per effect batch.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.faults = Some(plane);
    }

    /// The fault plane's injection counters ([`FaultReport::default`] when no plane is
    /// installed). The protocol-side recovery counters stay zero here; the experiment
    /// driver fills them from the nodes.
    pub fn fault_report(&self) -> FaultReport {
        self.faults
            .as_ref()
            .map(FaultPlane::report)
            .unwrap_or_default()
    }

    /// Installs a [`RoundHook`] invoked at every future round barrier (the instants
    /// `n * round_period`); barriers at or before the current instant never fire.
    pub fn set_round_hook(&mut self, hook: Box<dyn RoundHook>) {
        let period = self.cfg.round_period.as_millis().max(1);
        self.barriers_fired = self.now.as_millis() / period;
        self.hook = Some(hook);
        self.hook_sampler = None;
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Message delivery statistics.
    pub fn network_stats(&self) -> NetworkStats {
        self.stats
    }

    /// The bootstrap registry.
    pub fn bootstrap(&self) -> &BootstrapRegistry {
        &self.bootstrap
    }

    /// Registers `node` with the bootstrap server so joiners can discover it. Typically
    /// called for public nodes only.
    pub fn register_public(&mut self, node: NodeId) {
        self.bootstrap.register(node);
    }

    /// The traffic ledger (bytes and messages per node).
    pub fn traffic(&self) -> &TrafficLedger {
        &self.traffic
    }

    /// Mutable access to the traffic ledger, e.g. to reset the measurement window once the
    /// overlay reaches steady state.
    pub fn traffic_mut(&mut self) -> &mut TrafficLedger {
        &mut self.traffic
    }

    /// Merges the traffic ledger into `out` (cleared first, map capacity retained).
    pub fn traffic_snapshot_into(&self, out: &mut TrafficLedger) {
        out.reset_window(self.traffic.window_start());
        out.merge_from(&self.traffic);
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Returns `true` when the simulation holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns `true` if `node` is currently alive.
    pub fn contains(&self, node: NodeId) -> bool {
        self.nodes.contains(slot_index(node))
    }

    /// Identifiers of all live nodes, in ascending id order.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.nodes.iter().map(|(_, slot)| slot.id).collect()
    }

    /// Shared access to the protocol instance of `node`.
    pub fn node(&self, node: NodeId) -> Option<&P> {
        self.nodes.get(slot_index(node)).map(|slot| &slot.proto)
    }

    /// Exclusive access to the protocol instance of `node`.
    pub fn node_mut(&mut self, node: NodeId) -> Option<&mut P> {
        self.nodes
            .get_mut(slot_index(node))
            .map(|slot| &mut slot.proto)
    }

    /// Iterates over `(id, protocol)` pairs of all live nodes, in ascending id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.nodes.iter().map(|(_, slot)| (slot.id, &slot.proto))
    }

    /// The time at which `node` joined the simulation.
    pub fn joined_at(&self, node: NodeId) -> Option<SimTime> {
        self.nodes.get(slot_index(node)).map(|slot| slot.joined_at)
    }

    /// Adds a node running `proto`, invoking its [`Protocol::on_start`] callback and
    /// scheduling its periodic rounds.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same identifier is already present.
    pub fn add_node(&mut self, id: NodeId, proto: P) {
        assert!(
            !self.nodes.contains(slot_index(id)),
            "node {id} is already part of the simulation"
        );
        let slot = NodeSlot {
            id,
            proto,
            rng: self.cfg.seed.node_rng(id),
            joined_at: self.now,
        };
        self.nodes.insert(slot_index(id), slot);
        self.filter.on_node_added(id);
        self.execute(id, |proto, ctx| proto.on_start(ctx));
        let phase = if self.cfg.random_phase {
            let period_ms = self.cfg.round_period.as_millis().max(1);
            SimDuration::from_millis(self.sched_rng.gen_range(0..period_ms))
        } else {
            self.cfg.round_period
        };
        self.queue
            .schedule(self.now + phase, Event::Round { node: id });
    }

    /// Removes a node (crash or departure), returning its protocol state.
    ///
    /// In-flight messages addressed to the node are silently dropped when they arrive, which
    /// models a crash: no goodbye messages are sent.
    pub fn remove_node(&mut self, id: NodeId) -> Option<P> {
        let slot = self.nodes.remove(slot_index(id))?;
        self.bootstrap.unregister(id);
        self.filter.on_node_removed(id);
        Some(slot.proto)
    }

    /// Runs the simulation until the virtual clock reaches `deadline`.
    pub fn run_until(&mut self, deadline: SimTime) {
        if self.hook.is_some() {
            self.run_until_with_barriers(deadline);
            return;
        }
        while let Some(at) = self.queue.peek_time() {
            if at > deadline {
                break;
            }
            let scheduled = self.queue.pop().expect("peeked event must exist");
            self.now = scheduled.at;
            self.dispatch(scheduled.event);
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// [`run_until`](Self::run_until) with an installed [`RoundHook`]: the event loop is
    /// split at every barrier instant `n * round_period <= deadline`. The hook fires
    /// *before* any event scheduled at or after the barrier instant dispatches — the same
    /// observation point as the sharded engine's phase barrier, where events at exactly
    /// the window edge belong to the next phase.
    fn run_until_with_barriers(&mut self, deadline: SimTime) {
        let period = self.cfg.round_period.as_millis().max(1);
        loop {
            let barrier =
                SimTime::from_millis(self.barriers_fired.saturating_add(1).saturating_mul(period));
            let next_event = self.queue.peek_time();
            if barrier <= deadline && next_event.is_none_or(|at| barrier <= at) {
                if barrier > self.now {
                    self.now = barrier;
                }
                self.barriers_fired += 1;
                let round = self.barriers_fired;
                // Take/restore so the hook can borrow the engine as `&mut dyn HookOps`.
                if let Some(mut hook) = self.hook.take() {
                    hook.on_round_barrier_with(round, barrier, self);
                    self.hook = Some(hook);
                }
                continue;
            }
            match next_event {
                Some(at) if at <= deadline => {
                    let scheduled = self.queue.pop().expect("peeked event must exist");
                    self.now = scheduled.at;
                    self.dispatch(scheduled.event);
                }
                _ => break,
            }
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Runs the simulation for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Runs the simulation for `rounds` gossip periods from the current instant.
    pub fn run_for_rounds(&mut self, rounds: u64) {
        self.run_for(self.cfg.round_period.saturating_mul(rounds));
    }

    fn dispatch(&mut self, event: Event<P::Message>) {
        match event {
            Event::Round { node } => {
                if self.nodes.contains(slot_index(node)) {
                    self.execute(node, |proto, ctx| proto.on_round(ctx));
                    let next = self.next_round_delay();
                    self.queue.schedule(self.now + next, Event::Round { node });
                }
            }
            Event::Timer { node, key } => {
                if self.nodes.contains(slot_index(node)) {
                    self.execute(node, |proto, ctx| proto.on_timer(key, ctx));
                }
            }
            Event::Deliver { from, to, msg } => {
                if !self.nodes.contains(slot_index(to)) {
                    self.stats.destination_gone += 1;
                    self.traffic.record_dropped(from);
                    return;
                }
                match self.filter.can_deliver(from, to, self.now) {
                    DeliveryVerdict::Deliver => {
                        self.stats.delivered += 1;
                        self.traffic.record_received(to, msg.wire_size());
                        self.execute(to, |proto, ctx| proto.on_message(from, msg, ctx));
                    }
                    DeliveryVerdict::BlockedByNat => {
                        self.stats.blocked_by_nat += 1;
                        self.traffic.record_dropped(from);
                    }
                    DeliveryVerdict::NoSuchDestination => {
                        self.stats.destination_gone += 1;
                        self.traffic.record_dropped(from);
                    }
                }
            }
        }
    }

    fn next_round_delay(&mut self) -> SimDuration {
        let period = self.cfg.round_period.as_millis() as f64;
        if self.cfg.round_jitter > 0.0 {
            let jitter = self
                .sched_rng
                .gen_range(-self.cfg.round_jitter..self.cfg.round_jitter);
            SimDuration::from_millis_f64((period * (1.0 + jitter)).max(1.0))
        } else {
            self.cfg.round_period
        }
    }

    /// Runs `callback` on the protocol instance of `node` with a [`Context`] backed by the
    /// engine's recycled effect buffers, then applies the side effects (messages, timers)
    /// the callback produced.
    fn execute<F>(&mut self, node: NodeId, callback: F)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Message>),
    {
        let outbox_buf = std::mem::take(&mut self.outbox_buf);
        let timers_buf = std::mem::take(&mut self.timers_buf);
        let (mut outgoing, mut timers) = {
            let slot = self
                .nodes
                .get_mut(slot_index(node))
                .expect("execute() requires a live node");
            let mut transport = SimTransport::with_buffers(
                ContextParams {
                    node,
                    now: self.now,
                    round_period: self.cfg.round_period,
                    rng: &mut slot.rng,
                    bootstrap: &self.bootstrap,
                },
                outbox_buf,
                timers_buf,
            );
            let mut ctx = Context::new(&mut transport);
            callback(&mut slot.proto, &mut ctx);
            transport.into_effects()
        };
        self.apply_effects(node, &mut outgoing, &mut timers);
        self.outbox_buf = outgoing;
        self.timers_buf = timers;
    }

    /// Drains the effect buffers into the network and the event queue; the emptied buffers
    /// keep their capacity and return to the engine's pool.
    fn apply_effects(
        &mut self,
        from: NodeId,
        outgoing: &mut Vec<Outgoing<P::Message>>,
        timers: &mut Vec<TimerRequest>,
    ) {
        let mut session = self.faults.as_ref().and_then(FaultPlane::begin);
        for Outgoing { to, mut msg } in outgoing.drain(..) {
            self.traffic.record_sent(from, msg.wire_size());
            self.filter.on_send(from, to, self.now);
            if self.loss.drops(from, to, &mut self.loss_rng) {
                self.stats.lost += 1;
                self.traffic.record_dropped(from);
                continue;
            }
            let mut extra_delay = SimDuration::ZERO;
            let mut duplicate = false;
            if let Some(session) = session.as_mut() {
                let decision = session.judge(from, to);
                if decision.drop {
                    self.stats.lost += 1;
                    self.traffic.record_dropped(from);
                    continue;
                }
                if decision.corrupt {
                    msg.fault_mutate(session.rng());
                }
                extra_delay = decision.extra_delay;
                duplicate = decision.duplicate;
            }
            let latency = self.latency.sample(from, to, &mut self.latency_rng);
            if duplicate {
                // The copy travels at the base latency; the original may additionally be
                // delayed by a reordering spike.
                self.queue.schedule(
                    self.now + latency,
                    Event::Deliver {
                        from,
                        to,
                        msg: msg.clone(),
                    },
                );
            }
            self.queue.schedule(
                self.now + latency + extra_delay,
                Event::Deliver { from, to, msg },
            );
        }
        for TimerRequest { delay, key } in timers.drain(..) {
            self.queue
                .schedule(self.now + delay, Event::Timer { node: from, key });
        }
    }
}

impl<P: PssNode> Simulation<P> {
    /// Draws a peer sample from `node` using the node's own random stream, following the
    /// protocol's sampling rule.
    pub fn sample_from(&mut self, node: NodeId) -> Option<NodeId> {
        let slot = self.nodes.get_mut(slot_index(node))?;
        slot.proto.draw_sample(&mut slot.rng)
    }

    /// Installs a [`RoundHook`] like [`set_round_hook`](Self::set_round_hook) and captures
    /// the protocol's sampling rule so the hook's [`HookOps::draw_sample`] calls work.
    pub fn set_sampled_round_hook(&mut self, hook: Box<dyn RoundHook>) {
        self.set_round_hook(hook);
        self.hook_sampler = Some(P::draw_sample);
    }
}

impl<P: Protocol> HookOps for Simulation<P> {
    fn draw_sample(&mut self, node: NodeId) -> Option<NodeId> {
        let sampler = self.hook_sampler?;
        let slot = self.nodes.get_mut(slot_index(node))?;
        sampler(&mut slot.proto, &mut slot.rng)
    }

    fn is_live(&self, node: NodeId) -> bool {
        self.contains(node)
    }

    fn live_node_ids_into(&self, out: &mut Vec<NodeId>) {
        out.extend(self.nodes.iter().map(|(_, slot)| slot.id));
    }

    fn record_transfer(&mut self, from: NodeId, to: NodeId, bytes: usize) {
        self.traffic.record_sent(from, bytes);
        self.traffic.record_received(to, bytes);
    }

    fn record_blocked(&mut self, from: NodeId) {
        self.traffic.record_dropped(from);
    }
}

impl<P: Protocol> crate::engine_api::SimulationEngine<P> for Simulation<P> {
    fn from_config(cfg: SimulationConfig) -> Self {
        Simulation::new(cfg)
    }

    fn set_latency_model<L: LatencyModel + Send + Sync + 'static>(&mut self, model: L) {
        Simulation::set_latency_model(self, model);
    }

    fn set_loss_model<L: LossModel + Send + Sync + 'static>(&mut self, model: L) {
        Simulation::set_loss_model(self, model);
    }

    fn set_delivery_filter<D: DeliveryFilter + 'static>(&mut self, filter: D) {
        Simulation::set_delivery_filter(self, filter);
    }

    fn set_round_hook(&mut self, hook: Box<dyn RoundHook>) {
        Simulation::set_round_hook(self, hook);
    }

    fn set_sampled_round_hook(&mut self, hook: Box<dyn RoundHook>)
    where
        P: PssNode,
    {
        Simulation::set_sampled_round_hook(self, hook);
    }

    fn set_fault_plane(&mut self, plane: FaultPlane) {
        Simulation::set_fault_plane(self, plane);
    }

    fn fault_report(&self) -> FaultReport {
        Simulation::fault_report(self)
    }

    fn config(&self) -> &SimulationConfig {
        Simulation::config(self)
    }

    fn now(&self) -> SimTime {
        Simulation::now(self)
    }

    fn len(&self) -> usize {
        Simulation::len(self)
    }

    fn contains(&self, node: NodeId) -> bool {
        Simulation::contains(self, node)
    }

    fn register_public(&mut self, node: NodeId) {
        Simulation::register_public(self, node);
    }

    fn add_node(&mut self, id: NodeId, proto: P) {
        Simulation::add_node(self, id, proto);
    }

    fn remove_node(&mut self, id: NodeId) -> Option<P> {
        Simulation::remove_node(self, id)
    }

    fn run_until(&mut self, deadline: SimTime) {
        Simulation::run_until(self, deadline);
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId, &P)) {
        for (id, proto) in self.nodes() {
            f(id, proto);
        }
    }

    fn node_id_upper_bound(&self) -> u64 {
        // Slots are addressed by the raw node id, so the arena bound is the id bound.
        self.nodes.slot_upper_bound() as u64
    }

    fn network_stats(&self) -> NetworkStats {
        Simulation::network_stats(self)
    }

    fn traffic_snapshot(&self) -> TrafficLedger {
        self.traffic.clone()
    }

    fn traffic_snapshot_into(&self, out: &mut TrafficLedger) {
        Simulation::traffic_snapshot_into(self, out);
    }

    fn reset_traffic_window(&mut self) {
        let now = self.now;
        self.traffic.reset_window(now);
    }

    fn draw_sample(&mut self, node: NodeId) -> Option<NodeId>
    where
        P: PssNode,
    {
        self.sample_from(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;
    use crate::loss::BernoulliLoss;
    use crate::protocol::TimerKey;
    use crate::types::NatClass;

    /// Test protocol: floods a counter to a fixed buddy each round.
    struct Buddy {
        buddy: Option<NodeId>,
        received: Vec<u32>,
        rounds: u64,
        timer_fired: bool,
    }

    impl Buddy {
        fn new(buddy: Option<NodeId>) -> Self {
            Buddy {
                buddy,
                received: Vec::new(),
                rounds: 0,
                timer_fired: false,
            }
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Counter(u32);

    impl WireSize for Counter {
        fn wire_size(&self) -> usize {
            100
        }
    }

    impl Protocol for Buddy {
        type Message = Counter;

        fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
            ctx.set_timer(SimDuration::from_millis(10), TimerKey::new(1));
        }

        fn on_round(&mut self, ctx: &mut Context<'_, Self::Message>) {
            self.rounds += 1;
            if let Some(buddy) = self.buddy {
                ctx.send(buddy, Counter(self.rounds as u32));
            }
        }

        fn on_message(
            &mut self,
            _from: NodeId,
            msg: Self::Message,
            _ctx: &mut Context<'_, Self::Message>,
        ) {
            self.received.push(msg.0);
        }

        fn on_timer(&mut self, key: TimerKey, _ctx: &mut Context<'_, Self::Message>) {
            assert_eq!(key, TimerKey::new(1));
            self.timer_fired = true;
        }
    }

    impl PssNode for Buddy {
        fn nat_class(&self) -> NatClass {
            NatClass::Public
        }

        fn known_peers(&self) -> Vec<NodeId> {
            self.buddy.into_iter().collect()
        }

        fn draw_sample(&mut self, _rng: &mut SmallRng) -> Option<NodeId> {
            self.buddy
        }

        fn rounds_executed(&self) -> u64 {
            self.rounds
        }
    }

    fn two_node_sim() -> Simulation<Buddy> {
        let mut sim = Simulation::new(
            SimulationConfig::default()
                .with_seed(3)
                .with_round_jitter(0.0)
                .with_random_phase(false),
        );
        sim.set_latency_model(ConstantLatency::new(SimDuration::from_millis(10)));
        sim.add_node(NodeId::new(1), Buddy::new(Some(NodeId::new(2))));
        sim.add_node(NodeId::new(2), Buddy::new(Some(NodeId::new(1))));
        sim
    }

    #[test]
    fn rounds_fire_periodically() {
        let mut sim = two_node_sim();
        sim.run_for(SimDuration::from_secs(10));
        for (_, node) in sim.nodes() {
            assert_eq!(node.rounds, 10);
        }
    }

    #[test]
    fn fault_plane_drops_everything_at_full_loss() {
        use crate::faults::{FaultPlane, FaultProfile};
        use crate::rng::Seed;
        let mut sim = two_node_sim();
        let plane = FaultPlane::new(Seed::new(3));
        plane.set_default_profile(FaultProfile::lossy(1.0));
        sim.set_fault_plane(plane);
        sim.run_for(SimDuration::from_secs(5));
        for (_, node) in sim.nodes() {
            assert!(node.received.is_empty(), "a message survived 100% loss");
        }
        let report = sim.fault_report();
        assert!(report.injected_drops > 0);
        let stats = sim.network_stats();
        assert_eq!(stats.delivered, 0);
        assert_eq!(
            stats.lost, report.injected_drops,
            "fault drops count as lost"
        );
    }

    #[test]
    fn fault_plane_duplicates_double_delivery() {
        use crate::faults::{FaultPlane, FaultProfile};
        use crate::rng::Seed;
        let mut sim = two_node_sim();
        let plane = FaultPlane::new(Seed::new(3));
        plane.set_default_profile(FaultProfile::default().with_duplicate(1.0));
        sim.set_fault_plane(plane);
        // Rounds at t = 1..5 s, 10 ms latency; flush the in-flight round-5 copies.
        sim.run_for(SimDuration::from_secs(5));
        sim.run_for(SimDuration::from_millis(20));
        let n1 = sim.node(NodeId::new(1)).unwrap();
        let n2 = sim.node(NodeId::new(2)).unwrap();
        assert_eq!(n1.received.len(), 10);
        assert_eq!(n2.received.len(), 10);
        assert_eq!(sim.fault_report().duplicates, 10);
        assert_eq!(sim.network_stats().delivered, 20);
    }

    #[test]
    fn fault_plane_clear_restores_clean_delivery() {
        use crate::faults::{FaultPlane, FaultProfile};
        use crate::rng::Seed;
        let mut sim = two_node_sim();
        let plane = FaultPlane::new(Seed::new(3));
        plane.set_default_profile(FaultProfile::lossy(1.0));
        sim.set_fault_plane(plane.clone());
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.network_stats().delivered, 0);
        let dropped_so_far = sim.fault_report().injected_drops;
        plane.clear();
        sim.run_for(SimDuration::from_secs(5));
        let stats = sim.network_stats();
        assert!(stats.delivered > 0, "clear() must stop injection");
        assert_eq!(
            sim.fault_report().injected_drops,
            dropped_so_far,
            "counters persist across clear() but must not grow"
        );
    }

    #[test]
    fn messages_are_delivered_with_latency() {
        let mut sim = two_node_sim();
        // Rounds fire at t = 1..5 s; each message takes 10 ms, so the round-5 messages are
        // still in flight when the clock stops at exactly 5 s.
        sim.run_for(SimDuration::from_secs(5));
        let n1 = sim.node(NodeId::new(1)).unwrap();
        let n2 = sim.node(NodeId::new(2)).unwrap();
        assert_eq!(n1.received.len(), 4);
        assert_eq!(n2.received.len(), 4);
        assert_eq!(sim.network_stats().delivered, 8);
        // Running a little longer flushes the in-flight messages.
        sim.run_for(SimDuration::from_millis(20));
        assert_eq!(sim.network_stats().delivered, 10);
        assert_eq!(sim.network_stats().total(), 10);
    }

    #[test]
    fn timers_fire_once() {
        let mut sim = two_node_sim();
        sim.run_for(SimDuration::from_millis(50));
        assert!(sim.node(NodeId::new(1)).unwrap().timer_fired);
        assert!(sim.node(NodeId::new(2)).unwrap().timer_fired);
    }

    #[test]
    fn traffic_ledger_accounts_bytes() {
        let mut sim = two_node_sim();
        // Run slightly past the fourth round so the fourth delivery (at 4 s + 10 ms) lands.
        sim.run_for(SimDuration::from_millis(4_500));
        let t1 = sim.traffic().node_or_default(NodeId::new(1));
        assert_eq!(t1.bytes_sent, 400);
        assert_eq!(t1.bytes_received, 400);
    }

    #[test]
    fn removed_node_stops_receiving() {
        let mut sim = two_node_sim();
        sim.run_for(SimDuration::from_secs(2));
        sim.remove_node(NodeId::new(2)).unwrap();
        sim.run_for(SimDuration::from_secs(3));
        // Node 1 keeps sending to the dead node; those messages count as destination_gone.
        assert!(sim.network_stats().destination_gone > 0);
        assert!(!sim.contains(NodeId::new(2)));
        assert_eq!(sim.len(), 1);
    }

    #[test]
    #[should_panic(expected = "already part of the simulation")]
    fn duplicate_node_panics() {
        let mut sim = two_node_sim();
        sim.add_node(NodeId::new(1), Buddy::new(None));
    }

    #[test]
    fn loss_model_drops_messages() {
        let mut sim = Simulation::new(
            SimulationConfig::default()
                .with_seed(4)
                .with_round_jitter(0.0)
                .with_random_phase(false),
        );
        sim.set_latency_model(ConstantLatency::new(SimDuration::from_millis(1)));
        sim.set_loss_model(BernoulliLoss::new(1.0));
        sim.add_node(NodeId::new(1), Buddy::new(Some(NodeId::new(2))));
        sim.add_node(NodeId::new(2), Buddy::new(None));
        sim.run_for(SimDuration::from_secs(5));
        assert_eq!(sim.network_stats().delivered, 0);
        assert_eq!(sim.network_stats().lost, 5);
        assert!(sim.node(NodeId::new(2)).unwrap().received.is_empty());
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut sim: Simulation<Buddy> = Simulation::new(SimulationConfig::default());
        sim.run_until(SimTime::from_secs(42));
        assert_eq!(sim.now(), SimTime::from_secs(42));
    }

    #[test]
    fn deterministic_across_identical_runs() {
        let run = || {
            let mut sim = two_node_sim();
            sim.run_for(SimDuration::from_secs(20));
            (
                sim.network_stats(),
                sim.node(NodeId::new(1)).unwrap().received.clone(),
            )
        };
        assert_eq!(run(), run());
    }

    #[test]
    fn sample_from_uses_protocol_rule() {
        let mut sim = two_node_sim();
        assert_eq!(sim.sample_from(NodeId::new(1)), Some(NodeId::new(2)));
        assert_eq!(sim.sample_from(NodeId::new(99)), None);
    }

    #[test]
    fn joined_at_records_join_time() {
        let mut sim = two_node_sim();
        sim.run_until(SimTime::from_secs(3));
        sim.add_node(NodeId::new(7), Buddy::new(None));
        assert_eq!(sim.joined_at(NodeId::new(7)), Some(SimTime::from_secs(3)));
        assert_eq!(sim.joined_at(NodeId::new(1)), Some(SimTime::ZERO));
    }

    use std::cell::RefCell;
    use std::rc::Rc;

    /// Records every barrier the engine hands to the hook.
    struct Recorder(Rc<RefCell<Vec<(u64, SimTime)>>>);

    impl RoundHook for Recorder {
        fn on_round_barrier(&mut self, round: u64, now: SimTime) {
            self.0.borrow_mut().push((round, now));
        }
    }

    #[test]
    fn round_hook_fires_once_per_barrier() {
        let mut sim = two_node_sim();
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_round_hook(Box::new(Recorder(Rc::clone(&log))));
        // Split the run across several run_until calls, including one that re-reaches an
        // already-fired barrier: no barrier may fire twice.
        sim.run_until(SimTime::from_millis(2_500));
        sim.run_until(SimTime::from_millis(2_500));
        sim.run_until(SimTime::from_secs(5));
        let fired = log.borrow().clone();
        let expected: Vec<(u64, SimTime)> = (1..=5)
            .map(|n| (n, SimTime::from_secs(n)))
            .collect::<Vec<_>>();
        assert_eq!(fired, expected);
    }

    #[test]
    fn round_hook_fires_before_events_at_the_barrier_instant() {
        // With zero jitter and no random phase, rounds fire exactly at 1 s, 2 s, ... —
        // i.e. exactly at the barrier instants. The hook must run before the round
        // callbacks scheduled at the same instant (events at the barrier belong to the
        // next phase, as in the sharded engine), which a trace shared between a probe
        // protocol and the hook makes observable.
        let trace: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));

        struct Tracer(Rc<RefCell<Vec<&'static str>>>);
        impl Protocol for Tracer {
            type Message = Counter;
            fn on_start(&mut self, _ctx: &mut Context<'_, Self::Message>) {}
            fn on_round(&mut self, _ctx: &mut Context<'_, Self::Message>) {
                self.0.borrow_mut().push("round");
            }
            fn on_message(
                &mut self,
                _from: NodeId,
                _msg: Self::Message,
                _ctx: &mut Context<'_, Self::Message>,
            ) {
            }
        }
        struct BarrierTracer(Rc<RefCell<Vec<&'static str>>>);
        impl RoundHook for BarrierTracer {
            fn on_round_barrier(&mut self, _round: u64, _now: SimTime) {
                self.0.borrow_mut().push("barrier");
            }
        }

        let mut sim = Simulation::new(
            SimulationConfig::default()
                .with_seed(3)
                .with_round_jitter(0.0)
                .with_random_phase(false),
        );
        sim.add_node(NodeId::new(0), Tracer(Rc::clone(&trace)));
        sim.set_round_hook(Box::new(BarrierTracer(Rc::clone(&trace))));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(
            trace.borrow().as_slice(),
            &["barrier", "round", "barrier", "round"],
            "each barrier precedes the round callbacks at the same instant"
        );
    }

    #[test]
    fn round_hook_installed_mid_run_skips_past_barriers() {
        let mut sim = two_node_sim();
        sim.run_until(SimTime::from_secs(3));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_round_hook(Box::new(Recorder(Rc::clone(&log))));
        sim.run_until(SimTime::from_secs(5));
        let rounds: Vec<u64> = log.borrow().iter().map(|(r, _)| *r).collect();
        assert_eq!(rounds, vec![4, 5], "barriers 1..3 predate the hook");
    }

    #[test]
    fn round_hook_fires_on_an_empty_queue() {
        let mut sim: Simulation<Buddy> = Simulation::new(
            SimulationConfig::default()
                .with_round_jitter(0.0)
                .with_random_phase(false),
        );
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_round_hook(Box::new(Recorder(Rc::clone(&log))));
        sim.run_until(SimTime::from_secs(3));
        assert_eq!(log.borrow().len(), 3, "barriers fire without any events");
        assert_eq!(sim.now(), SimTime::from_secs(3));
    }

    /// Probes the `HookOps` seam at each barrier: the live-id walk, liveness queries,
    /// protocol-rule sample draws and ledger charging.
    struct SeamProbe(Rc<RefCell<Vec<Option<NodeId>>>>);

    impl RoundHook for SeamProbe {
        fn on_round_barrier(&mut self, _round: u64, _now: SimTime) {}

        fn on_round_barrier_with(&mut self, _round: u64, _now: SimTime, ops: &mut dyn HookOps) {
            let mut ids = Vec::new();
            ops.live_node_ids_into(&mut ids);
            assert_eq!(ids, vec![NodeId::new(1), NodeId::new(2)]);
            assert!(ops.is_live(NodeId::new(1)));
            assert!(!ops.is_live(NodeId::new(99)));
            self.0.borrow_mut().push(ops.draw_sample(NodeId::new(1)));
            ops.record_transfer(NodeId::new(1), NodeId::new(2), 500);
            ops.record_blocked(NodeId::new(2));
        }
    }

    #[test]
    fn sampled_round_hook_serves_draws_and_charges_the_ledger() {
        let mut sim = two_node_sim();
        let samples = Rc::new(RefCell::new(Vec::new()));
        sim.set_sampled_round_hook(Box::new(SeamProbe(Rc::clone(&samples))));
        sim.run_until(SimTime::from_secs(2));
        // Buddy's sampling rule always returns the buddy.
        assert_eq!(
            samples.borrow().as_slice(),
            &[Some(NodeId::new(2)), Some(NodeId::new(2))]
        );
        let t1 = sim.traffic().node_or_default(NodeId::new(1));
        let t2 = sim.traffic().node_or_default(NodeId::new(2));
        // Two barriers × 500 workload bytes on top of the protocol's own 100-byte sends.
        assert!(t1.bytes_sent >= 1_000, "sent {}", t1.bytes_sent);
        assert!(t2.bytes_received >= 1_000, "received {}", t2.bytes_received);
        assert_eq!(t2.messages_dropped, 2, "one blocked record per barrier");
    }

    #[test]
    fn plain_round_hook_has_no_sampling_rule() {
        struct DrawProbe(Rc<RefCell<Vec<Option<NodeId>>>>);
        impl RoundHook for DrawProbe {
            fn on_round_barrier(&mut self, _round: u64, _now: SimTime) {}
            fn on_round_barrier_with(&mut self, _round: u64, _now: SimTime, ops: &mut dyn HookOps) {
                self.0.borrow_mut().push(ops.draw_sample(NodeId::new(1)));
            }
        }
        let mut sim = two_node_sim();
        let draws = Rc::new(RefCell::new(Vec::new()));
        sim.set_round_hook(Box::new(DrawProbe(Rc::clone(&draws))));
        sim.run_until(SimTime::from_secs(2));
        assert_eq!(
            draws.borrow().as_slice(),
            &[None, None],
            "the plain installer must not capture a sampling rule"
        );
    }
}
