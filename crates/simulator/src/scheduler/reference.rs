//! The original `BinaryHeap`-backed event queue, retained as the executable ordering
//! specification for the time-wheel in [`super`].
//!
//! The heap queue is what the engines shipped with through PR 3. Its pop order —
//! ascending `(time, insertion sequence)` — *defines* the engine's event semantics, so
//! when the hot path moved to the bucketed time-wheel the heap stayed in-tree as the
//! reference implementation: the randomized equivalence tests in the parent module drive
//! both queues through identical schedule/pop workloads and assert bit-identical pop
//! sequences. It is not used by any engine at runtime.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use crate::event::{Event, ScheduledEvent};
use crate::time::SimTime;

/// A priority queue of [`ScheduledEvent`]s ordered by execution time, with deterministic
/// FIFO tie-breaking for events scheduled at the same instant.
///
/// # Examples
///
/// ```
/// use croupier_simulator::scheduler::reference::ReferenceEventQueue;
/// use croupier_simulator::event::Event;
/// use croupier_simulator::{NodeId, SimTime};
///
/// let mut q: ReferenceEventQueue<u32> = ReferenceEventQueue::new();
/// q.schedule(SimTime::from_millis(20), Event::Round { node: NodeId::new(1) });
/// q.schedule(SimTime::from_millis(10), Event::Round { node: NodeId::new(2) });
/// let first = q.pop().unwrap();
/// assert_eq!(first.at, SimTime::from_millis(10));
/// ```
#[derive(Debug)]
pub struct ReferenceEventQueue<M> {
    heap: BinaryHeap<Reverse<ScheduledEvent<M>>>,
    next_seq: u64,
    scheduled_total: u64,
}

impl<M> ReferenceEventQueue<M> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        ReferenceEventQueue {
            heap: BinaryHeap::new(),
            next_seq: 0,
            scheduled_total: 0,
        }
    }

    /// Schedules `event` for execution at `at`.
    ///
    /// Events scheduled for the same instant execute in the order they were scheduled.
    pub fn schedule(&mut self, at: SimTime, event: Event<M>) {
        let seq = self.next_seq;
        self.next_seq += 1;
        self.scheduled_total += 1;
        self.heap.push(Reverse(ScheduledEvent { at, seq, event }));
    }

    /// Removes and returns the next event, or `None` when the queue is empty.
    pub fn pop(&mut self) -> Option<ScheduledEvent<M>> {
        self.heap.pop().map(|Reverse(ev)| ev)
    }

    /// Execution time of the next event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|Reverse(ev)| ev.at)
    }

    /// Number of events currently queued.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Returns `true` when no events are queued.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Total number of events that have ever been scheduled on this queue.
    pub fn scheduled_total(&self) -> u64 {
        self.scheduled_total
    }
}

impl<M> Default for ReferenceEventQueue<M> {
    fn default() -> Self {
        Self::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::types::NodeId;

    fn round(node: u64) -> Event<u32> {
        Event::Round {
            node: NodeId::new(node),
        }
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = ReferenceEventQueue::new();
        q.schedule(SimTime::from_millis(30), round(3));
        q.schedule(SimTime::from_millis(10), round(1));
        q.schedule(SimTime::from_millis(20), round(2));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|ev| ev.event.target().as_u64())
            .collect();
        assert_eq!(order, vec![1, 2, 3]);
    }

    #[test]
    fn equal_times_pop_in_fifo_order() {
        let mut q = ReferenceEventQueue::new();
        for node in 0..50u64 {
            q.schedule(SimTime::from_millis(5), round(node));
        }
        let order: Vec<u64> = std::iter::from_fn(|| q.pop())
            .map(|ev| ev.event.target().as_u64())
            .collect();
        assert_eq!(order, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn counters_track_scheduled_events() {
        let mut q = ReferenceEventQueue::new();
        assert!(q.is_empty());
        q.schedule(SimTime::ZERO, round(1));
        q.schedule(SimTime::ZERO, round(2));
        assert_eq!(q.scheduled_total(), 2);
        assert_eq!(q.peek_time(), Some(SimTime::ZERO));
        q.pop();
        assert_eq!(q.len(), 1);
        assert_eq!(q.scheduled_total(), 2);
    }
}
