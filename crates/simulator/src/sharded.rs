//! The sharded, phase-parallel execution engine.
//!
//! [`ShardedSimulation`] trades the event engine's exact event interleaving for
//! round-synchronous parallelism: virtual time is cut into windows of one gossip period
//! ("phases"), nodes are striped over `engine_threads` shards (`shard = id mod S`,
//! stored densely at `id div S` in each shard's [`NodeArena`]), and every phase runs all
//! shards in parallel on scoped worker threads. Messages never cross shard boundaries
//! mid-phase: workers buffer them in per-`(src-shard, dst-shard)` outboxes and sort each
//! outbox into the canonical order — `(send time, sender id, per-sender sequence
//! number)` — before the barrier. At the barrier the coordinator k-way merges the
//! pre-sorted runs, runs the delivery filter and sender-side traffic accounting over
//! them sequentially in canonical order, and stages the survivors per destination shard;
//! each shard then inserts its own staged deliveries into its own event queue (in
//! parallel for large batches). Only the stateful filter/accounting pass is inherently
//! sequential — the sort and the insertion, which dominated the old single-threaded
//! barrier at 100k nodes, now scale with the worker count.
//!
//! # Determinism across worker counts
//!
//! A run is bit-identical for any `engine_threads` on the same seed because no observable
//! decision depends on shard composition:
//!
//! * **Node state** only changes in the node's own callbacks; within a phase, callbacks of
//!   different nodes are independent (effects are buffered until the barrier), so the order
//!   in which a worker interleaves *different* nodes is invisible.
//! * **Randomness** is per-node: protocol draws come from the node's own stream (as in the
//!   event engine), and latency/loss draws come from a dedicated per-node network stream
//!   ([`Seed::node_stream_rng`](crate::rng::Seed::node_stream_rng)) consumed in the node's
//!   own emission order. The models' [`sample_shared`](LatencyModel::sample_shared) /
//!   [`drops_shared`](LossModel::drops_shared) paths are `&self` and derive any per-node
//!   state by hashing ids, never lazily from a shared stream.
//! * **Same-node event ordering** is `(time, insertion order)` in the shard queue, and every
//!   insertion affecting one node happens at a globally fixed point: barrier merges insert
//!   in canonical order, and a node's own callbacks insert its timers/rounds in callback
//!   order. Neither depends on how nodes are distributed over shards.
//! * **Cross-shard mutation** (delivery filter, sender-side ledger, loss/NAT statistics) is
//!   confined to the single-threaded barrier and processed in the canonical merge order;
//!   receiver-side counters live in per-shard ledgers and are commutative sums, merged on
//!   demand.
//!
//! # Differences from the event engine
//!
//! The quantisation is observable: a message is never executed in the phase it was sent in
//! (its delivery is clamped to the next round barrier if its sampled latency lands
//! earlier), and the delivery filter is consulted at the barrier rather than at the exact
//! delivery instant. Runs are therefore deterministic and *statistically* equivalent to the
//! event engine, but not bit-identical to it — `tests/determinism.rs` pins down exactly the
//! guarantee that holds: sharded runs are bit-identical to each other across worker counts.

use std::cell::{Cell, RefCell};

use rand::rngs::SmallRng;
use rand::Rng;

use crate::arena::NodeArena;
use crate::bootstrap::BootstrapRegistry;
use crate::engine::{NetworkStats, SimulationConfig};
use crate::engine_api::{HookOps, RoundHook, SimulationEngine};
use crate::event::Event;
use crate::faults::{FaultPlane, FaultReport};
use crate::latency::{KingLatencyModel, LatencyModel};
use crate::loss::{LossModel, NoLoss};
use crate::network::{DeliveryFilter, DeliveryVerdict, OpenInternet};
use crate::protocol::{Context, Outgoing, Protocol, PssNode, TimerRequest, WireSize};
use crate::rng::Stream;
use crate::scheduler::EventQueue;
use crate::time::{SimDuration, SimTime};
use crate::traffic::TrafficLedger;
use crate::transport::{ContextParams, SimTransport};
use crate::types::NodeId;

/// Per-node state owned by a shard.
struct NodeState<P> {
    id: NodeId,
    proto: P,
    /// The node's protocol stream (same derivation as in the event engine).
    rng: SmallRng,
    /// The node's latency/loss stream, consumed once per emitted message.
    net_rng: SmallRng,
    /// The node's round-phase and clock-skew stream.
    sched_rng: SmallRng,
    joined_at: SimTime,
    /// Monotone per-node counter stamped on emitted messages; the canonical merge order
    /// tie-breaker for messages a node sends at the same instant.
    msg_seq: u64,
}

/// A message buffered in a shard outbox between a send and the next round barrier.
struct PendingMessage<M> {
    from: NodeId,
    to: NodeId,
    msg: M,
    sent_at: SimTime,
    deliver_at: SimTime,
    seq: u64,
    lost: bool,
    wire: usize,
}

/// One shard: a stripe of nodes, their event queue, and this phase's outboxes.
struct Shard<P: Protocol> {
    /// Total number of shards (the stripe modulus).
    stride: u64,
    nodes: NodeArena<NodeState<P>>,
    queue: EventQueue<P::Message>,
    /// Outgoing messages buffered during the current phase, bucketed by destination shard.
    /// Drained (capacity retained) at every round barrier.
    outboxes: Vec<Vec<PendingMessage<P::Message>>>,
    /// Recycled effect buffers threaded through every protocol callback on this shard
    /// (see [`Context::with_buffers`]); capacity persists across events.
    ctx_outbox: Vec<Outgoing<P::Message>>,
    ctx_timers: Vec<TimerRequest>,
    /// Receiver-side traffic counters (received bytes, drops charged at delivery time).
    traffic: TrafficLedger,
    /// Receiver-side delivery statistics.
    stats: NetworkStats,
}

fn local_index(node: NodeId, stride: u64) -> usize {
    (node.as_u64() / stride) as usize
}

/// The read-only environment every worker shares during a phase: the configuration, the
/// bootstrap registry and the network models (consulted only through their `*_shared`,
/// order-independent paths).
struct PhaseEnv<'a> {
    cfg: &'a SimulationConfig,
    bootstrap: &'a BootstrapRegistry,
    latency: &'a (dyn LatencyModel + Sync),
    loss: &'a (dyn LossModel + Sync),
}

fn next_round_delay(cfg: &SimulationConfig, rng: &mut SmallRng) -> SimDuration {
    let period = cfg.round_period.as_millis() as f64;
    if cfg.round_jitter > 0.0 {
        let jitter = rng.gen_range(-cfg.round_jitter..cfg.round_jitter);
        SimDuration::from_millis_f64((period * (1.0 + jitter)).max(1.0))
    } else {
        cfg.round_period
    }
}

impl<P: Protocol> Shard<P> {
    fn new(stride: u64) -> Self {
        Shard {
            stride,
            nodes: NodeArena::new(),
            queue: EventQueue::new(),
            outboxes: (0..stride).map(|_| Vec::new()).collect(),
            ctx_outbox: Vec::new(),
            ctx_timers: Vec::new(),
            traffic: TrafficLedger::new(),
            stats: NetworkStats::default(),
        }
    }

    /// Runs `callback` on one node and converts its effects: timers go straight into this
    /// shard's queue (they are node-local), messages become [`PendingMessage`]s — with
    /// loss and latency already sampled from the node's private network stream — pushed
    /// directly into the destination shard's outbox bucket. The context's effect buffers
    /// come from the shard's pool, so steady-state execution allocates nothing.
    fn execute<F>(&mut self, local: usize, at: SimTime, env: &PhaseEnv<'_>, callback: F)
    where
        F: FnOnce(&mut P, &mut Context<'_, P::Message>),
    {
        let outbox_buf = std::mem::take(&mut self.ctx_outbox);
        let timers_buf = std::mem::take(&mut self.ctx_timers);
        let (id, mut outgoing, mut timers) = {
            let state = self
                .nodes
                .get_mut(local)
                .expect("execute() requires a live node");
            let mut transport = SimTransport::with_buffers(
                ContextParams {
                    node: state.id,
                    now: at,
                    round_period: env.cfg.round_period,
                    rng: &mut state.rng,
                    bootstrap: env.bootstrap,
                },
                outbox_buf,
                timers_buf,
            );
            let mut ctx = Context::new(&mut transport);
            callback(&mut state.proto, &mut ctx);
            let (outgoing, timers) = transport.into_effects();
            (state.id, outgoing, timers)
        };
        for TimerRequest { delay, key } in timers.drain(..) {
            self.queue
                .schedule(at + delay, Event::Timer { node: id, key });
        }
        let stride = self.stride;
        let state = self.nodes.get_mut(local).expect("node still live");
        for Outgoing { to, msg } in outgoing.drain(..) {
            let wire = msg.wire_size();
            let seq = state.msg_seq;
            state.msg_seq += 1;
            let lost = env.loss.drops_shared(id, to, &mut state.net_rng);
            let deliver_at = if lost {
                at
            } else {
                at + env.latency.sample_shared(id, to, &mut state.net_rng)
            };
            let dst = (to.as_u64() % stride) as usize;
            self.outboxes[dst].push(PendingMessage {
                from: id,
                to,
                msg,
                sent_at: at,
                deliver_at,
                seq,
                lost,
                wire,
            });
        }
        self.ctx_outbox = outgoing;
        self.ctx_timers = timers;
    }

    /// Processes every event of this shard scheduled before `window_end`.
    fn run_phase(&mut self, window_end: SimTime, env: &PhaseEnv<'_>) {
        let stride = self.stride;
        while let Some(at) = self.queue.peek_time() {
            if at >= window_end {
                break;
            }
            let scheduled = self.queue.pop().expect("peeked event must exist");
            match scheduled.event {
                Event::Round { node } => {
                    let local = local_index(node, stride);
                    if self.nodes.contains(local) {
                        self.execute(local, scheduled.at, env, |proto, ctx| proto.on_round(ctx));
                        let state = self.nodes.get_mut(local).expect("node still live");
                        let next = next_round_delay(env.cfg, &mut state.sched_rng);
                        self.queue
                            .schedule(scheduled.at + next, Event::Round { node });
                    }
                }
                Event::Timer { node, key } => {
                    let local = local_index(node, stride);
                    if self.nodes.contains(local) {
                        self.execute(local, scheduled.at, env, |proto, ctx| {
                            proto.on_timer(key, ctx)
                        });
                    }
                }
                Event::Deliver { from, to, msg } => {
                    let local = local_index(to, stride);
                    if self.nodes.contains(local) {
                        self.stats.delivered += 1;
                        self.traffic.record_received(to, msg.wire_size());
                        self.execute(local, scheduled.at, env, |proto, ctx| {
                            proto.on_message(from, msg, ctx)
                        });
                    } else {
                        self.stats.destination_gone += 1;
                        self.traffic.record_dropped(from);
                    }
                }
            }
        }
        // Sort this phase's outboxes into *descending* canonical order on the worker:
        // the barrier then k-way merges `S²` pre-sorted runs instead of sorting the
        // whole batch on the coordinating thread. The sort — the dominant barrier cost
        // at 100k nodes — thus parallelises with the phase itself. Descending order
        // lets the merge consume each run by `Vec::pop` (cheapest possible by-value
        // cursor, and no per-barrier iterator allocation).
        for outbox in &mut self.outboxes {
            outbox.sort_unstable_by(|a, b| {
                (b.sent_at, b.from, b.seq).cmp(&(a.sent_at, a.from, a.seq))
            });
        }
    }
}

/// The sharded, phase-parallel simulation engine. See the module documentation for the
/// execution model and the determinism argument.
///
/// # Examples
///
/// ```
/// use croupier_simulator::{
///     Context, NodeId, Protocol, ShardedSimulation, SimulationConfig, WireSize,
/// };
///
/// struct Ping(u64);
///
/// #[derive(Clone, Debug)]
/// struct Msg;
///
/// impl WireSize for Msg {
///     fn wire_size(&self) -> usize {
///         28
///     }
/// }
///
/// impl Protocol for Ping {
///     type Message = Msg;
///     fn on_start(&mut self, _ctx: &mut Context<'_, Msg>) {}
///     fn on_round(&mut self, ctx: &mut Context<'_, Msg>) {
///         if let Some(peer) = ctx.bootstrap_sample(1).first().copied() {
///             ctx.send(peer, Msg);
///         }
///     }
///     fn on_message(&mut self, _from: NodeId, _msg: Msg, _ctx: &mut Context<'_, Msg>) {
///         self.0 += 1;
///     }
/// }
///
/// let cfg = SimulationConfig::default().with_seed(7).with_engine_threads(2);
/// let mut sim = ShardedSimulation::new(cfg);
/// for i in 0..16 {
///     sim.register_public(NodeId::new(i));
///     sim.add_node(NodeId::new(i), Ping(0));
/// }
/// sim.run_for_rounds(10);
/// let received: u64 = sim.nodes().map(|(_, p)| p.0).sum();
/// assert!(received > 0);
/// ```
pub struct ShardedSimulation<P: Protocol> {
    cfg: SimulationConfig,
    now: SimTime,
    /// Index of the next phase to execute; phase `p` covers `[p*T, (p+1)*T)`.
    next_phase: u64,
    shards: Vec<Shard<P>>,
    latency: Box<dyn LatencyModel + Send + Sync>,
    loss: Box<dyn LossModel + Send + Sync>,
    filter: Box<dyn DeliveryFilter>,
    bootstrap: BootstrapRegistry,
    /// Sender-side traffic counters, written at the barrier in canonical order.
    barrier_traffic: TrafficLedger,
    /// Loss/NAT statistics, written at the barrier in canonical order.
    barrier_stats: NetworkStats,
    /// Recycled barrier batch: the per-phase canonical-order merge of every shard's
    /// outboxes. Drained by [`merge_batch`](Self::merge_batch) with its capacity
    /// retained, so the barrier allocates nothing once the per-phase message volume has
    /// peaked.
    merge_buf: Vec<PendingMessage<P::Message>>,
    /// Recycled backing store for the k-way merge's head heap (one entry per
    /// `(src, dst)` outbox run).
    heap_buf: Vec<std::cmp::Reverse<(SimTime, NodeId, u64, usize)>>,
    /// Recycled per-destination-shard staging lists for the barrier's partitioned queue
    /// insertion: the sequential filter pass appends surviving deliveries here in
    /// canonical order, then every shard drains its own list into its own queue — in
    /// parallel when the batch is large enough to pay for the threads.
    delivery_bufs: Vec<Vec<(SimTime, Event<P::Message>)>>,
    /// Cached ascending id list served by [`node_ids`](Self::node_ids); rebuilt lazily
    /// after a membership change (`node_ids_valid` false).
    cached_node_ids: RefCell<Vec<NodeId>>,
    node_ids_valid: Cell<bool>,
    /// Round-barrier hook, if installed; runs on the coordinating thread right after each
    /// phase's canonical merge, so its effects are worker-count independent.
    hook: Option<Box<dyn RoundHook>>,
    /// The protocol's peer-sampling rule, captured (monomorphised where `P: PssNode`
    /// holds) by [`set_sampled_round_hook`](Self::set_sampled_round_hook) so the
    /// `P: Protocol`-only barrier loop can serve [`HookOps::draw_sample`].
    hook_sampler: Option<fn(&mut P, &mut SmallRng) -> Option<NodeId>>,
    /// Fault-injection plane, if installed; judged during the barrier's sequential
    /// canonical-order pass, so injected faults are worker-count independent too.
    faults: Option<FaultPlane>,
}

impl<P: Protocol + Send> ShardedSimulation<P>
where
    P::Message: Send,
{
    /// Creates a sharded engine with `cfg.engine_threads` worker shards (at least one), a
    /// King-like latency model, no message loss and no NAT filtering.
    pub fn new(cfg: SimulationConfig) -> Self {
        let workers = cfg.engine_threads.max(1);
        ShardedSimulation {
            cfg,
            now: SimTime::ZERO,
            next_phase: 0,
            shards: (0..workers).map(|_| Shard::new(workers as u64)).collect(),
            latency: Box::new(KingLatencyModel::new()),
            loss: Box::new(NoLoss),
            filter: Box::new(OpenInternet),
            bootstrap: BootstrapRegistry::new(),
            barrier_traffic: TrafficLedger::new(),
            barrier_stats: NetworkStats::default(),
            merge_buf: Vec::new(),
            heap_buf: Vec::new(),
            delivery_bufs: (0..workers).map(|_| Vec::new()).collect(),
            cached_node_ids: RefCell::new(Vec::new()),
            node_ids_valid: Cell::new(false),
            hook: None,
            hook_sampler: None,
            faults: None,
        }
    }

    /// Replaces the latency model; workers sample it concurrently through
    /// [`LatencyModel::sample_shared`].
    pub fn set_latency_model(&mut self, model: impl LatencyModel + Send + Sync + 'static) {
        self.latency = Box::new(model);
    }

    /// Replaces the loss model; workers consult it concurrently through
    /// [`LossModel::drops_shared`].
    pub fn set_loss_model(&mut self, model: impl LossModel + Send + Sync + 'static) {
        self.loss = Box::new(model);
    }

    /// Replaces the delivery filter. The filter runs on the coordinating thread only, at
    /// the round barriers, in the canonical merge order.
    pub fn set_delivery_filter(&mut self, filter: impl DeliveryFilter + 'static) {
        self.filter = Box::new(filter);
    }

    /// Installs a [`RoundHook`] invoked at every future phase barrier, on the
    /// coordinating thread, after the phase's canonical cross-shard merge. Phases that
    /// already ran never replay their barriers.
    pub fn set_round_hook(&mut self, hook: Box<dyn RoundHook>) {
        self.hook = Some(hook);
        self.hook_sampler = None;
    }

    /// Installs a [`FaultPlane`] judged per message during the barrier's sequential
    /// canonical-order pass, which keeps fault injection bit-identical across worker
    /// counts.
    pub fn set_fault_plane(&mut self, plane: FaultPlane) {
        self.faults = Some(plane);
    }

    /// The fault plane's injection counters ([`FaultReport::default`] when no plane is
    /// installed).
    pub fn fault_report(&self) -> FaultReport {
        self.faults
            .as_ref()
            .map(FaultPlane::report)
            .unwrap_or_default()
    }

    /// The engine configuration.
    pub fn config(&self) -> &SimulationConfig {
        &self.cfg
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of worker shards (= worker threads) the engine runs with.
    pub fn num_shards(&self) -> usize {
        self.shards.len()
    }

    /// Aggregated message delivery statistics across the barrier and all shards.
    pub fn network_stats(&self) -> NetworkStats {
        let mut stats = self.barrier_stats;
        for shard in &self.shards {
            stats.merge(shard.stats);
        }
        stats
    }

    /// The bootstrap registry.
    pub fn bootstrap(&self) -> &BootstrapRegistry {
        &self.bootstrap
    }

    /// Registers `node` with the bootstrap server so joiners can discover it.
    pub fn register_public(&mut self, node: NodeId) {
        self.bootstrap.register(node);
    }

    /// A merged copy of the per-node traffic ledger (barrier-side sender counters plus
    /// every shard's receiver counters).
    pub fn traffic_snapshot(&self) -> TrafficLedger {
        let mut merged = TrafficLedger::new();
        self.traffic_snapshot_into(&mut merged);
        merged
    }

    /// Merges the per-node traffic ledger into `out` (cleared first), reusing `out`'s map
    /// capacity instead of cloning a fresh ledger per call — callers that sample traffic
    /// repeatedly (the experiment driver's overhead windows) keep one ledger alive and
    /// pay zero allocations per sample in steady state.
    pub fn traffic_snapshot_into(&self, out: &mut TrafficLedger) {
        out.reset_window(self.barrier_traffic.window_start());
        out.merge_from(&self.barrier_traffic);
        for shard in &self.shards {
            out.merge_from(&shard.traffic);
        }
    }

    /// Clears all traffic counters and restarts the measurement window at the current time.
    pub fn reset_traffic_window(&mut self) {
        let now = self.now;
        self.barrier_traffic.reset_window(now);
        for shard in &mut self.shards {
            shard.traffic.reset_window(now);
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| s.nodes.len()).sum()
    }

    /// Returns `true` when the simulation holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn locate(&self, node: NodeId) -> (usize, usize) {
        let stride = self.shards.len() as u64;
        ((node.as_u64() % stride) as usize, local_index(node, stride))
    }

    /// Returns `true` if `node` is currently alive.
    pub fn contains(&self, node: NodeId) -> bool {
        let (shard, local) = self.locate(node);
        self.shards[shard].nodes.contains(local)
    }

    /// Identifiers of all live nodes, in ascending id order.
    ///
    /// The list is cached and invalidated on membership changes; a rebuild walks the
    /// stripes in lockstep (shard `s` stores id `local * stride + s` at slot `local`), so
    /// ascending order falls out of the traversal and no sort is needed. This method still
    /// clones the cached list for API compatibility; use
    /// [`node_ids_ref`](Self::node_ids_ref) to borrow it copy-free.
    pub fn node_ids(&self) -> Vec<NodeId> {
        self.node_ids_ref().to_vec()
    }

    /// Borrows the cached ascending id list without copying it.
    ///
    /// The borrow is released when the returned guard drops; membership changes require
    /// `&mut self`, so the guard cannot observe a stale list.
    pub fn node_ids_ref(&self) -> std::cell::Ref<'_, [NodeId]> {
        if !self.node_ids_valid.get() {
            let mut ids = self.cached_node_ids.borrow_mut();
            ids.clear();
            let stride = self.shards.len() as u64;
            let max_slots = self
                .shards
                .iter()
                .map(|s| s.nodes.slot_upper_bound())
                .max()
                .unwrap_or(0);
            for local in 0..max_slots {
                for (s, shard) in self.shards.iter().enumerate() {
                    if shard.nodes.contains(local) {
                        ids.push(NodeId::new(local as u64 * stride + s as u64));
                    }
                }
            }
            self.node_ids_valid.set(true);
        }
        std::cell::Ref::map(self.cached_node_ids.borrow(), Vec::as_slice)
    }

    /// Shared access to the protocol instance of `node`.
    pub fn node(&self, node: NodeId) -> Option<&P> {
        let (shard, local) = self.locate(node);
        self.shards[shard].nodes.get(local).map(|s| &s.proto)
    }

    /// Exclusive access to the protocol instance of `node`.
    pub fn node_mut(&mut self, node: NodeId) -> Option<&mut P> {
        let (shard, local) = self.locate(node);
        self.shards[shard]
            .nodes
            .get_mut(local)
            .map(|s| &mut s.proto)
    }

    /// Iterates over `(id, protocol)` pairs of all live nodes, shard by shard.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &P)> {
        self.shards
            .iter()
            .flat_map(|s| s.nodes.iter().map(|(_, st)| (st.id, &st.proto)))
    }

    /// The time at which `node` joined the simulation.
    pub fn joined_at(&self, node: NodeId) -> Option<SimTime> {
        let (shard, local) = self.locate(node);
        self.shards[shard].nodes.get(local).map(|s| s.joined_at)
    }

    /// Adds a node running `proto`, invoking its [`Protocol::on_start`] callback and
    /// scheduling its periodic rounds.
    ///
    /// # Panics
    ///
    /// Panics if a node with the same identifier is already present.
    pub fn add_node(&mut self, id: NodeId, proto: P) {
        let (shard_idx, local) = self.locate(id);
        assert!(
            !self.shards[shard_idx].nodes.contains(local),
            "node {id} is already part of the simulation"
        );
        self.filter.on_node_added(id);
        let seed = self.cfg.seed;
        let state = NodeState {
            id,
            proto,
            rng: seed.node_rng(id),
            net_rng: seed.node_stream_rng(id, Stream::Latency),
            sched_rng: seed.node_stream_rng(id, Stream::Scheduling),
            joined_at: self.now,
            msg_seq: 0,
        };
        self.shards[shard_idx].nodes.insert(local, state);
        self.node_ids_valid.set(false);
        let now = self.now;
        let cfg = self.cfg;
        {
            let env = PhaseEnv {
                cfg: &cfg,
                bootstrap: &self.bootstrap,
                latency: self.latency.as_ref(),
                loss: self.loss.as_ref(),
            };
            self.shards[shard_idx].execute(local, now, &env, |proto, ctx| proto.on_start(ctx));
        }
        // `on_start`'s messages landed in the joining node's shard outboxes; merge them
        // immediately so they are delivered like any other send. The outboxes are
        // bucketed by destination, so concatenation interleaves the node's sequence
        // numbers — restore the canonical order with an explicit (tiny) sort.
        let mut batch = std::mem::take(&mut self.merge_buf);
        for outbox in &mut self.shards[shard_idx].outboxes {
            batch.append(outbox);
        }
        batch.sort_unstable_by_key(|m| (m.sent_at, m.from, m.seq));
        self.merge_batch(&mut batch, now);
        self.merge_buf = batch;
        let shard = &mut self.shards[shard_idx];
        let state = shard.nodes.get_mut(local).expect("node just inserted");
        let phase = if cfg.random_phase {
            let period_ms = cfg.round_period.as_millis().max(1);
            SimDuration::from_millis(state.sched_rng.gen_range(0..period_ms))
        } else {
            cfg.round_period
        };
        shard.queue.schedule(now + phase, Event::Round { node: id });
    }

    /// Removes a node (crash or departure), returning its protocol state. In-flight
    /// messages addressed to the node are dropped when their delivery fires.
    pub fn remove_node(&mut self, id: NodeId) -> Option<P> {
        let (shard, local) = self.locate(id);
        let state = self.shards[shard].nodes.remove(local)?;
        self.node_ids_valid.set(false);
        self.bootstrap.unregister(id);
        self.filter.on_node_removed(id);
        Some(state.proto)
    }

    fn period_ms(&self) -> u64 {
        self.cfg.round_period.as_millis().max(1)
    }

    /// End of phase `p`, i.e. the instant `(p + 1) * round_period`.
    fn phase_end(&self, phase: u64) -> SimTime {
        SimTime::from_millis(self.period_ms().saturating_mul(phase + 1))
    }

    /// Runs the simulation until the virtual clock reaches `deadline`, executing every
    /// phase whose window closes at or before it.
    pub fn run_until(&mut self, deadline: SimTime) {
        loop {
            let window_end = self.phase_end(self.next_phase);
            if window_end > deadline {
                break;
            }
            if self.hook.is_none() && self.shards.iter().all(|s| s.queue.is_empty()) {
                // Nothing queued anywhere (and rounds self-perpetuate, so nothing ever
                // will be until a node is added): skip ahead instead of spinning phases.
                // With a hook installed the phases must still run one by one, because
                // every barrier owes the hook a callback.
                self.next_phase = deadline.as_millis() / self.period_ms();
                break;
            }
            self.run_one_phase();
        }
        if deadline > self.now {
            self.now = deadline;
        }
    }

    /// Runs the simulation for `span` of virtual time from the current instant.
    pub fn run_for(&mut self, span: SimDuration) {
        let deadline = self.now + span;
        self.run_until(deadline);
    }

    /// Runs the simulation for `rounds` gossip periods from the current instant.
    pub fn run_for_rounds(&mut self, rounds: u64) {
        self.run_for(self.cfg.round_period.saturating_mul(rounds));
    }

    /// Executes one phase: all shards in parallel, then the barrier merge.
    fn run_one_phase(&mut self) {
        let phase = self.next_phase;
        let window_end = self.phase_end(phase);
        let cfg = self.cfg;
        {
            let env = PhaseEnv {
                cfg: &cfg,
                bootstrap: &self.bootstrap,
                latency: self.latency.as_ref(),
                loss: self.loss.as_ref(),
            };
            let shards = &mut self.shards;
            if shards.len() == 1 {
                shards[0].run_phase(window_end, &env);
            } else if shards.iter().any(|s| !s.queue.is_empty()) {
                let env = &env;
                std::thread::scope(|scope| {
                    for shard in shards.iter_mut() {
                        scope.spawn(move || shard.run_phase(window_end, env));
                    }
                });
            }
        }
        let mut batch = std::mem::take(&mut self.merge_buf);
        self.gather_sorted(&mut batch);
        self.next_phase = phase + 1;
        if window_end > self.now {
            self.now = window_end;
        }
        self.merge_batch(&mut batch, window_end);
        self.merge_buf = batch;
        // Take/restore so the hook can borrow the engine as `&mut dyn HookOps`.
        if let Some(mut hook) = self.hook.take() {
            // After the canonical merge: the hook observes every effect of the closing
            // phase, and its own effects govern the next phase — for any worker count.
            hook.on_round_barrier_with(phase + 1, window_end, self);
            self.hook = Some(hook);
        }
    }

    /// Collects every shard's outboxes into `batch` in the canonical
    /// `(send time, sender, sequence)` order by k-way merging the `S²` runs the workers
    /// pre-sorted (descending) at the end of [`Shard::run_phase`]. The keys are globally
    /// unique (the per-sender sequence number breaks same-instant ties), so merging
    /// sorted runs yields exactly the order the old full coordinator-side sort produced
    /// — at O(n log S²) comparisons instead of O(n log n), with the O(n log n) part done
    /// in parallel on the workers. The runs being descending, each run's head is its
    /// `last()` element and advancing is `Vec::pop`, so the merge is allocation-free
    /// (the heap's backing store is recycled in `heap_buf`).
    fn gather_sorted(&mut self, batch: &mut Vec<PendingMessage<P::Message>>) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;
        let stride = self.shards.len();
        let mut heads = std::mem::take(&mut self.heap_buf);
        heads.clear();
        for idx in 0..stride * stride {
            if let Some(m) = self.shards[idx / stride].outboxes[idx % stride].last() {
                heads.push(Reverse((m.sent_at, m.from, m.seq, idx)));
            }
        }
        let mut heap = BinaryHeap::from(heads);
        while let Some(Reverse((_, _, _, idx))) = heap.pop() {
            let run = &mut self.shards[idx / stride].outboxes[idx % stride];
            let message = run.pop().expect("a heap entry implies a run head");
            if let Some(m) = run.last() {
                heap.push(Reverse((m.sent_at, m.from, m.seq, idx)));
            }
            batch.push(message);
        }
        self.heap_buf = heap.into_vec();
    }

    /// The barrier: walks `batch` (already in canonical order) once, performing
    /// sender-side accounting and filtering, then schedules surviving deliveries no
    /// earlier than `earliest` — partitioned by destination shard, in parallel when the
    /// batch is large. Drains `batch` in place so its capacity is reused phase after
    /// phase.
    ///
    /// The accounting/filter pass is sequential by design: the delivery filter and the
    /// sender-side ledger are stateful, and processing them in canonical order is what
    /// makes runs bit-identical across worker counts. Queue insertion, by contrast, is
    /// freely partitionable — each staged list holds one destination shard's deliveries
    /// in canonical relative order, and scheduling them list-order into that shard's
    /// queue reproduces the exact `(time, insertion order)` tie-breaking of a sequential
    /// interleaved insertion, because messages for different shards never share a queue.
    fn merge_batch(&mut self, batch: &mut Vec<PendingMessage<P::Message>>, earliest: SimTime) {
        let stride = self.shards.len() as u64;
        let mut staged = std::mem::take(&mut self.delivery_bufs);
        // One fault session per barrier: the plane is judged message by message in the
        // same canonical order as the filter, so its RNG draws — and therefore every
        // injected fault — are identical for any worker-thread count.
        let mut session = self.faults.as_ref().and_then(FaultPlane::begin);
        for mut message in batch.drain(..) {
            self.barrier_traffic.record_sent(message.from, message.wire);
            self.filter
                .on_send(message.from, message.to, message.sent_at);
            if message.lost {
                self.barrier_stats.lost += 1;
                self.barrier_traffic.record_dropped(message.from);
                continue;
            }
            let mut extra_delay = SimDuration::ZERO;
            let mut duplicate = false;
            if let Some(session) = session.as_mut() {
                let decision = session.judge(message.from, message.to);
                if decision.drop {
                    self.barrier_stats.lost += 1;
                    self.barrier_traffic.record_dropped(message.from);
                    continue;
                }
                if decision.corrupt {
                    message.msg.fault_mutate(session.rng());
                }
                extra_delay = decision.extra_delay;
                duplicate = decision.duplicate;
            }
            let exec_at = message.deliver_at.max(earliest);
            // NAT verdicts are per-message, judged once at the undelayed delivery
            // instant; a reorder spike shifts when the datagram arrives, not whether
            // the mapping that admits it exists.
            match self.filter.can_deliver(message.from, message.to, exec_at) {
                DeliveryVerdict::Deliver => {
                    let dst = (message.to.as_u64() % stride) as usize;
                    if duplicate {
                        // The duplicate travels at the base latency; only the original
                        // can additionally be held back by a reordering spike.
                        staged[dst].push((
                            exec_at,
                            Event::Deliver {
                                from: message.from,
                                to: message.to,
                                msg: message.msg.clone(),
                            },
                        ));
                    }
                    staged[dst].push((
                        exec_at + extra_delay,
                        Event::Deliver {
                            from: message.from,
                            to: message.to,
                            msg: message.msg,
                        },
                    ));
                }
                DeliveryVerdict::BlockedByNat => {
                    self.barrier_stats.blocked_by_nat += 1;
                    self.barrier_traffic.record_dropped(message.from);
                }
                DeliveryVerdict::NoSuchDestination => {
                    self.barrier_stats.destination_gone += 1;
                    self.barrier_traffic.record_dropped(message.from);
                }
            }
        }
        let total: usize = staged.iter().map(Vec::len).sum();
        if self.shards.len() > 1 && total >= PARALLEL_INSERT_THRESHOLD {
            std::thread::scope(|scope| {
                for (shard, stage) in self.shards.iter_mut().zip(staged.iter_mut()) {
                    if !stage.is_empty() {
                        scope.spawn(move || {
                            for (at, event) in stage.drain(..) {
                                shard.queue.schedule(at, event);
                            }
                        });
                    }
                }
            });
        } else {
            for (shard, stage) in self.shards.iter_mut().zip(staged.iter_mut()) {
                for (at, event) in stage.drain(..) {
                    shard.queue.schedule(at, event);
                }
            }
        }
        self.delivery_bufs = staged;
    }
}

/// Smallest per-barrier delivery count for which the partitioned queue insertion spawns
/// worker threads; smaller batches insert inline, since a thread spawn costs more than
/// scheduling a few thousand heap entries. The choice only affects wall-clock, never
/// outcomes: both paths insert identical per-queue sequences.
const PARALLEL_INSERT_THRESHOLD: usize = 4096;

impl<P: PssNode + Send> ShardedSimulation<P>
where
    P::Message: Send,
{
    /// Draws a peer sample from `node` using the node's own random stream, following the
    /// protocol's sampling rule.
    pub fn sample_from(&mut self, node: NodeId) -> Option<NodeId> {
        let (shard, local) = self.locate(node);
        let state = self.shards[shard].nodes.get_mut(local)?;
        state.proto.draw_sample(&mut state.rng)
    }

    /// Installs a [`RoundHook`] like [`set_round_hook`](Self::set_round_hook) and captures
    /// the protocol's sampling rule so the hook's [`HookOps::draw_sample`] calls work.
    pub fn set_sampled_round_hook(&mut self, hook: Box<dyn RoundHook>) {
        self.set_round_hook(hook);
        self.hook_sampler = Some(P::draw_sample);
    }
}

impl<P: Protocol + Send> HookOps for ShardedSimulation<P>
where
    P::Message: Send,
{
    fn draw_sample(&mut self, node: NodeId) -> Option<NodeId> {
        let sampler = self.hook_sampler?;
        let (shard, local) = self.locate(node);
        let state = self.shards[shard].nodes.get_mut(local)?;
        sampler(&mut state.proto, &mut state.rng)
    }

    fn is_live(&self, node: NodeId) -> bool {
        self.contains(node)
    }

    fn live_node_ids_into(&self, out: &mut Vec<NodeId>) {
        out.extend_from_slice(&self.node_ids_ref());
    }

    fn record_transfer(&mut self, from: NodeId, to: NodeId, bytes: usize) {
        // Both sides go to the barrier ledger: the snapshot merge is a commutative sum
        // over all ledgers, so which ledger holds a counter is unobservable.
        self.barrier_traffic.record_sent(from, bytes);
        self.barrier_traffic.record_received(to, bytes);
    }

    fn record_blocked(&mut self, from: NodeId) {
        self.barrier_traffic.record_dropped(from);
    }
}

impl<P: Protocol + Send> SimulationEngine<P> for ShardedSimulation<P>
where
    P::Message: Send,
{
    fn from_config(cfg: SimulationConfig) -> Self {
        ShardedSimulation::new(cfg)
    }

    fn set_latency_model<L: LatencyModel + Send + Sync + 'static>(&mut self, model: L) {
        ShardedSimulation::set_latency_model(self, model);
    }

    fn set_loss_model<L: LossModel + Send + Sync + 'static>(&mut self, model: L) {
        ShardedSimulation::set_loss_model(self, model);
    }

    fn set_delivery_filter<D: DeliveryFilter + 'static>(&mut self, filter: D) {
        ShardedSimulation::set_delivery_filter(self, filter);
    }

    fn set_round_hook(&mut self, hook: Box<dyn RoundHook>) {
        ShardedSimulation::set_round_hook(self, hook);
    }

    fn set_sampled_round_hook(&mut self, hook: Box<dyn RoundHook>)
    where
        P: PssNode,
    {
        ShardedSimulation::set_sampled_round_hook(self, hook);
    }

    fn set_fault_plane(&mut self, plane: FaultPlane) {
        ShardedSimulation::set_fault_plane(self, plane);
    }

    fn fault_report(&self) -> FaultReport {
        ShardedSimulation::fault_report(self)
    }

    fn config(&self) -> &SimulationConfig {
        ShardedSimulation::config(self)
    }

    fn now(&self) -> SimTime {
        ShardedSimulation::now(self)
    }

    fn len(&self) -> usize {
        ShardedSimulation::len(self)
    }

    fn contains(&self, node: NodeId) -> bool {
        ShardedSimulation::contains(self, node)
    }

    fn register_public(&mut self, node: NodeId) {
        ShardedSimulation::register_public(self, node);
    }

    fn add_node(&mut self, id: NodeId, proto: P) {
        ShardedSimulation::add_node(self, id, proto);
    }

    fn remove_node(&mut self, id: NodeId) -> Option<P> {
        ShardedSimulation::remove_node(self, id)
    }

    fn run_until(&mut self, deadline: SimTime) {
        ShardedSimulation::run_until(self, deadline);
    }

    fn for_each_node(&self, f: &mut dyn FnMut(NodeId, &P)) {
        for (id, proto) in self.nodes() {
            f(id, proto);
        }
    }

    fn node_id_upper_bound(&self) -> u64 {
        // Shard `s` stores id `i` at local slot `i / stride`, so a shard whose arena has
        // `len` slots has seen ids up to `(len - 1) * stride + s`. The maximum over the
        // shards equals the highest id ever inserted plus one, which makes the bound
        // identical across worker counts for the same population.
        let stride = self.shards.len() as u64;
        self.shards
            .iter()
            .enumerate()
            .map(|(s, shard)| match shard.nodes.slot_upper_bound() as u64 {
                0 => 0,
                len => (len - 1) * stride + s as u64 + 1,
            })
            .max()
            .unwrap_or(0)
    }

    fn network_stats(&self) -> NetworkStats {
        ShardedSimulation::network_stats(self)
    }

    fn traffic_snapshot(&self) -> TrafficLedger {
        ShardedSimulation::traffic_snapshot(self)
    }

    fn traffic_snapshot_into(&self, out: &mut TrafficLedger) {
        ShardedSimulation::traffic_snapshot_into(self, out);
    }

    fn reset_traffic_window(&mut self) {
        ShardedSimulation::reset_traffic_window(self);
    }

    fn draw_sample(&mut self, node: NodeId) -> Option<NodeId>
    where
        P: PssNode,
    {
        self.sample_from(node)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::latency::ConstantLatency;
    use crate::loss::BernoulliLoss;
    use crate::protocol::TimerKey;
    use crate::types::NatClass;

    /// Test protocol: each round, sends its round counter to the next node in a ring.
    struct Ring {
        n: u64,
        rounds: u64,
        received: Vec<(NodeId, u32)>,
        timer_fired: bool,
    }

    impl Ring {
        fn new(n: u64) -> Self {
            Ring {
                n,
                rounds: 0,
                received: Vec::new(),
                timer_fired: false,
            }
        }
    }

    #[derive(Clone, Debug, PartialEq)]
    struct Counter(u32);

    impl WireSize for Counter {
        fn wire_size(&self) -> usize {
            100
        }
    }

    impl Protocol for Ring {
        type Message = Counter;

        fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
            ctx.set_timer(SimDuration::from_millis(10), TimerKey::new(1));
        }

        fn on_round(&mut self, ctx: &mut Context<'_, Self::Message>) {
            self.rounds += 1;
            let next = NodeId::new((ctx.node_id().as_u64() + 1) % self.n);
            ctx.send(next, Counter(self.rounds as u32));
        }

        fn on_message(
            &mut self,
            from: NodeId,
            msg: Self::Message,
            _ctx: &mut Context<'_, Self::Message>,
        ) {
            self.received.push((from, msg.0));
        }

        fn on_timer(&mut self, key: TimerKey, _ctx: &mut Context<'_, Self::Message>) {
            assert_eq!(key, TimerKey::new(1));
            self.timer_fired = true;
        }
    }

    impl PssNode for Ring {
        fn nat_class(&self) -> NatClass {
            NatClass::Public
        }

        fn known_peers(&self) -> Vec<NodeId> {
            self.received.iter().map(|(from, _)| *from).collect()
        }

        fn draw_sample(&mut self, _rng: &mut SmallRng) -> Option<NodeId> {
            self.received.last().map(|(from, _)| *from)
        }

        fn rounds_executed(&self) -> u64 {
            self.rounds
        }
    }

    fn ring_sim(n: u64, threads: usize) -> ShardedSimulation<Ring> {
        let mut sim = ShardedSimulation::new(
            SimulationConfig::default()
                .with_seed(11)
                .with_engine_threads(threads),
        );
        sim.set_latency_model(ConstantLatency::new(SimDuration::from_millis(10)));
        for i in 0..n {
            sim.add_node(NodeId::new(i), Ring::new(n));
        }
        sim
    }

    /// Per-node observable state: `(id, rounds executed, messages received)`.
    type NodeTrace = (u64, u64, Vec<(NodeId, u32)>);

    /// Everything observable about a run, for bit-identity comparisons.
    type Fingerprint = (Vec<NodeTrace>, NetworkStats, TrafficLedger);

    fn fingerprint(sim: &ShardedSimulation<Ring>) -> Fingerprint {
        let mut nodes: Vec<NodeTrace> = sim
            .nodes()
            .map(|(id, p)| (id.as_u64(), p.rounds, p.received.clone()))
            .collect();
        nodes.sort();
        (nodes, sim.network_stats(), sim.traffic_snapshot())
    }

    #[test]
    fn rounds_fire_and_messages_flow() {
        let mut sim = ring_sim(8, 2);
        sim.run_for_rounds(10);
        for (_, node) in sim.nodes() {
            assert!(node.rounds >= 8, "rounds executed: {}", node.rounds);
            assert!(!node.received.is_empty());
            assert!(node.timer_fired);
        }
        let stats = sim.network_stats();
        assert!(stats.delivered > 0);
        assert_eq!(stats.total(), stats.delivered, "no loss, no NAT, no deaths");
    }

    #[test]
    fn runs_are_bit_identical_across_worker_counts() {
        let run = |threads: usize| {
            let mut sim = ring_sim(13, threads);
            sim.run_for_rounds(25);
            fingerprint(&sim)
        };
        let one = run(1);
        let two = run(2);
        let four = run(4);
        assert_eq!(one, two, "1 vs 2 workers diverged");
        assert_eq!(one, four, "1 vs 4 workers diverged");
        assert!(one.1.delivered > 0);
    }

    #[test]
    fn fault_injection_is_bit_identical_across_worker_counts() {
        use crate::faults::FaultProfile;
        use crate::rng::Seed;
        use crate::time::SimDuration;
        let run = |threads: usize| {
            let mut sim = ring_sim(13, threads);
            let plane = FaultPlane::new(Seed::new(11));
            plane.set_default_profile(
                FaultProfile::default()
                    .with_drop(0.1)
                    .with_duplicate(0.1)
                    .with_reorder(0.2, SimDuration::from_millis(500))
                    .with_burst(crate::faults::BurstLoss {
                        enter_probability: 0.05,
                        exit_probability: 0.3,
                        good_loss: 0.0,
                        bad_loss: 0.6,
                    }),
            );
            sim.set_fault_plane(plane);
            sim.run_for_rounds(25);
            (fingerprint(&sim), sim.fault_report())
        };
        let one = run(1);
        let two = run(2);
        let four = run(4);
        let eight = run(8);
        assert_eq!(one, two, "1 vs 2 workers diverged under faults");
        assert_eq!(one, four, "1 vs 4 workers diverged under faults");
        assert_eq!(one, eight, "1 vs 8 workers diverged under faults");
        let report = one.1;
        assert!(report.injected_drops > 0, "drop class never fired");
        assert!(report.burst_drops > 0, "burst class never fired");
        assert!(report.duplicates > 0, "duplicate class never fired");
        assert!(report.reorders > 0, "reorder class never fired");
        // Fault drops land in the loss counter; totals stay conserved.
        let stats = one.0 .1;
        assert!(stats.lost >= report.total_drops());
    }

    #[test]
    fn node_id_upper_bound_survives_churn_identically_across_worker_counts() {
        let run = |threads: usize| {
            let mut sim = ring_sim(12, threads);
            sim.run_for_rounds(3);
            assert_eq!(sim.node_id_upper_bound(), 12);
            for id in [2u64, 7, 11] {
                sim.remove_node(NodeId::new(id));
            }
            assert_eq!(
                sim.node_id_upper_bound(),
                12,
                "removals leave vacant slots; the bound must not shrink"
            );
            sim.add_node(NodeId::new(7), Ring::new(12)); // reuses the vacant slot
            sim.add_node(NodeId::new(12), Ring::new(12)); // grows the id space
            sim.run_for_rounds(2);
            sim.node_id_upper_bound()
        };
        assert_eq!(run(1), 13);
        assert_eq!(run(2), 13, "the bound must not depend on the shard stride");
        assert_eq!(run(4), 13, "the bound must not depend on the shard stride");
    }

    #[test]
    fn bit_identity_holds_with_default_king_latency_and_loss() {
        let run = |threads: usize| {
            let mut sim = ShardedSimulation::new(
                SimulationConfig::default()
                    .with_seed(23)
                    .with_engine_threads(threads),
            );
            sim.set_loss_model(BernoulliLoss::new(0.2));
            for i in 0..10 {
                sim.add_node(NodeId::new(i), Ring::new(10));
            }
            sim.run_for_rounds(20);
            fingerprint(&sim)
        };
        let a = run(1);
        let b = run(3);
        assert_eq!(a, b);
        assert!(a.1.lost > 0, "a 20% loss model should drop something");
    }

    #[test]
    fn traffic_ledger_accounts_bytes() {
        let mut sim = ring_sim(4, 2);
        sim.run_for_rounds(10);
        let ledger = sim.traffic_snapshot();
        let t = ledger.node_or_default(NodeId::new(1));
        assert!(t.bytes_sent >= 800, "ten rounds of 100-byte sends: {t:?}");
        assert!(t.bytes_received > 0);
        assert_eq!(ledger.total_bytes_sent() % 100, 0);
    }

    #[test]
    fn reset_traffic_window_clears_all_shards() {
        let mut sim = ring_sim(4, 2);
        sim.run_for_rounds(5);
        assert!(!sim.traffic_snapshot().is_empty());
        sim.reset_traffic_window();
        let ledger = sim.traffic_snapshot();
        assert!(ledger.is_empty());
        assert_eq!(ledger.window_start(), sim.now());
    }

    #[test]
    fn removed_node_stops_receiving_and_counts_as_gone() {
        let mut sim = ring_sim(4, 2);
        sim.run_for_rounds(3);
        assert!(sim.remove_node(NodeId::new(2)).is_some());
        assert!(!sim.contains(NodeId::new(2)));
        assert_eq!(sim.len(), 3);
        sim.run_for_rounds(5);
        assert!(sim.network_stats().destination_gone > 0);
    }

    #[test]
    #[should_panic(expected = "already part of the simulation")]
    fn duplicate_node_panics() {
        let mut sim = ring_sim(3, 2);
        sim.add_node(NodeId::new(1), Ring::new(3));
    }

    #[test]
    fn run_until_advances_clock_even_without_events() {
        let mut sim: ShardedSimulation<Ring> =
            ShardedSimulation::new(SimulationConfig::default().with_engine_threads(2));
        sim.run_until(SimTime::from_secs(42));
        assert_eq!(sim.now(), SimTime::from_secs(42));
    }

    #[test]
    fn sample_from_uses_protocol_rule() {
        let mut sim = ring_sim(4, 2);
        sim.run_for_rounds(5);
        assert!(sim.sample_from(NodeId::new(1)).is_some());
        assert_eq!(sim.sample_from(NodeId::new(99)), None);
    }

    #[test]
    fn joined_at_records_join_time() {
        let mut sim = ring_sim(3, 2);
        sim.run_until(SimTime::from_secs(3));
        sim.add_node(NodeId::new(7), Ring::new(3));
        assert_eq!(sim.joined_at(NodeId::new(7)), Some(SimTime::from_secs(3)));
        assert_eq!(sim.joined_at(NodeId::new(1)), Some(SimTime::ZERO));
    }

    use std::rc::Rc;

    /// Records every barrier the engine hands to the hook.
    struct Recorder(Rc<RefCell<Vec<(u64, SimTime)>>>);

    impl RoundHook for Recorder {
        fn on_round_barrier(&mut self, round: u64, now: SimTime) {
            self.0.borrow_mut().push((round, now));
        }
    }

    #[test]
    fn round_hook_fires_once_per_phase_barrier() {
        let mut sim = ring_sim(8, 2);
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_round_hook(Box::new(Recorder(Rc::clone(&log))));
        sim.run_for_rounds(3);
        let now = sim.now();
        sim.run_until(now); // a no-op window must not re-fire barriers
        sim.run_for_rounds(2);
        let fired = log.borrow().clone();
        let expected: Vec<(u64, SimTime)> = (1..=5).map(|n| (n, SimTime::from_secs(n))).collect();
        assert_eq!(fired, expected);
    }

    /// Draws one sample from node 0 per barrier and logs it.
    struct DrawProbe(Rc<RefCell<Vec<Option<NodeId>>>>);

    impl RoundHook for DrawProbe {
        fn on_round_barrier(&mut self, _round: u64, _now: SimTime) {}

        fn on_round_barrier_with(&mut self, _round: u64, _now: SimTime, ops: &mut dyn HookOps) {
            self.0.borrow_mut().push(ops.draw_sample(NodeId::new(0)));
        }
    }

    #[test]
    fn sampled_hook_draws_through_the_protocol_rule_and_plain_hook_does_not() {
        // Ring's sampling rule returns the most recent sender; after a couple of rounds
        // node 0's is its ring predecessor.
        let mut sim = ring_sim(4, 2);
        let draws = Rc::new(RefCell::new(Vec::new()));
        sim.set_sampled_round_hook(Box::new(DrawProbe(Rc::clone(&draws))));
        sim.run_for_rounds(4);
        assert_eq!(
            draws.borrow().last(),
            Some(&Some(NodeId::new(3))),
            "the sampled installer must serve protocol-rule draws"
        );
        // Re-installing through the plain entry point must drop the sampling rule.
        draws.borrow_mut().clear();
        sim.set_round_hook(Box::new(DrawProbe(Rc::clone(&draws))));
        sim.run_for_rounds(2);
        assert_eq!(
            draws.borrow().as_slice(),
            &[None, None],
            "set_round_hook must clear the captured sampler"
        );
    }

    #[test]
    fn round_hook_fires_even_with_empty_queues() {
        let mut sim: ShardedSimulation<Ring> =
            ShardedSimulation::new(SimulationConfig::default().with_engine_threads(3));
        let log = Rc::new(RefCell::new(Vec::new()));
        sim.set_round_hook(Box::new(Recorder(Rc::clone(&log))));
        sim.run_until(SimTime::from_secs(4));
        assert_eq!(log.borrow().len(), 4, "no events, but every barrier fires");
        assert_eq!(sim.now(), SimTime::from_secs(4));
    }

    #[test]
    fn round_hook_runs_do_not_perturb_bit_identity() {
        // A hook that only observes must leave the run byte-for-byte unchanged, and the
        // barrier sequence itself must be identical across worker counts.
        let run = |threads: usize| {
            let mut sim = ring_sim(13, threads);
            let log = Rc::new(RefCell::new(Vec::new()));
            sim.set_round_hook(Box::new(Recorder(Rc::clone(&log))));
            sim.run_for_rounds(15);
            let barriers = log.borrow().clone();
            (fingerprint(&sim), barriers)
        };
        let baseline = {
            let mut sim = ring_sim(13, 1);
            sim.run_for_rounds(15);
            fingerprint(&sim)
        };
        let (fp1, log1) = run(1);
        let (fp4, log4) = run(4);
        assert_eq!(fp1, baseline, "observer hook changed the run");
        assert_eq!(fp1, fp4, "1 vs 4 workers diverged under a hook");
        assert_eq!(log1, log4, "barrier sequences diverged");
        assert_eq!(log1.len(), 15);
    }

    #[test]
    fn node_ids_are_sorted_and_accessors_agree() {
        let mut sim = ring_sim(9, 4);
        let ids = sim.node_ids();
        assert_eq!(ids.len(), 9);
        assert!(ids.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(&*sim.node_ids_ref(), ids.as_slice(), "borrowed = owned");
        assert!(sim.node(NodeId::new(5)).is_some());
        assert_eq!(sim.num_shards(), 4);
        // The cache invalidates on membership changes, through either accessor.
        sim.remove_node(NodeId::new(5)).unwrap();
        assert_eq!(sim.node_ids_ref().len(), 8);
        assert!(!sim.node_ids_ref().contains(&NodeId::new(5)));
        sim.add_node(NodeId::new(20), Ring::new(9));
        assert_eq!(sim.node_ids().len(), 9);
        assert!(sim.node_ids_ref().contains(&NodeId::new(20)));
    }
}
