//! Node descriptors: the entries of partial views.

use croupier_simulator::{InlineVec, NatClass, NodeId};
use serde::{Deserialize, Serialize};

/// Serialized size of one descriptor on the wire, in bytes: a 6-byte address (IPv4 + port),
/// a 4-byte node identifier, one byte of NAT type and one byte of age. Matches the compact
/// encodings used in the paper's overhead accounting.
pub const DESCRIPTOR_WIRE_BYTES: usize = 12;

/// Inline capacity of [`DescriptorBatch`]: the largest descriptor list a default-config
/// shuffle produces, with headroom. A shuffle ships `ceil(shuffle_size / 2) + 1`
/// descriptors per view (subset plus the sender's own entry; paper default
/// `shuffle_size = 5` → 4), and the single-view baselines ship `shuffle_size + 1` (→ 6).
/// Oversized experiment configurations spill to the heap transparently.
pub const DESCRIPTOR_INLINE_CAPACITY: usize = 8;

/// A bounded descriptor list as carried in shuffle messages and exchange bookkeeping.
///
/// Backed by [`InlineVec`], so default-config payloads live inline in the message and the
/// shuffle hot path performs no heap allocation (the `Vec`-based payloads this replaced
/// were the dominant allocation source per exchange).
pub type DescriptorBatch = InlineVec<Descriptor, DESCRIPTOR_INLINE_CAPACITY>;

/// A descriptor of a node as carried in partial views and shuffle messages.
///
/// A descriptor records the node's address (its [`NodeId`] in the simulation), its NAT
/// class, and a timestamp expressed as the number of gossip rounds since the descriptor was
/// created (its *age*). Fresh descriptors have age zero; ages increase by one per round and
/// drive both the tail selection policy and descriptor replacement on merge.
///
/// # Examples
///
/// ```
/// use croupier::Descriptor;
/// use croupier_simulator::{NatClass, NodeId};
///
/// let mut d = Descriptor::new(NodeId::new(3), NatClass::Private);
/// assert_eq!(d.age, 0);
/// d.grow_older();
/// assert_eq!(d.age, 1);
/// assert!(Descriptor::new(NodeId::new(3), NatClass::Private).is_newer_than(&d));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Descriptor {
    /// The described node.
    pub node: NodeId,
    /// The described node's connectivity class.
    pub class: NatClass,
    /// Rounds elapsed since the descriptor was created by the described node.
    pub age: u32,
}

impl Descriptor {
    /// Creates a fresh descriptor (age zero).
    pub fn new(node: NodeId, class: NatClass) -> Self {
        Descriptor {
            node,
            class,
            age: 0,
        }
    }

    /// Creates a descriptor with an explicit age; mostly useful in tests.
    pub fn with_age(node: NodeId, class: NatClass, age: u32) -> Self {
        Descriptor { node, class, age }
    }

    /// Increments the descriptor's age by one round (saturating).
    pub fn grow_older(&mut self) {
        self.age = self.age.saturating_add(1);
    }

    /// Returns `true` if `self` is strictly fresher (lower age) than `other`.
    pub fn is_newer_than(&self, other: &Descriptor) -> bool {
        self.age < other.age
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_descriptors_are_fresh() {
        let d = Descriptor::new(NodeId::new(1), NatClass::Public);
        assert_eq!(d.age, 0);
        assert_eq!(d.node, NodeId::new(1));
        assert_eq!(d.class, NatClass::Public);
    }

    #[test]
    fn aging_saturates() {
        let mut d = Descriptor::with_age(NodeId::new(1), NatClass::Public, u32::MAX - 1);
        d.grow_older();
        assert_eq!(d.age, u32::MAX);
        d.grow_older();
        assert_eq!(d.age, u32::MAX);
    }

    #[test]
    fn freshness_comparison() {
        let old = Descriptor::with_age(NodeId::new(1), NatClass::Public, 5);
        let new = Descriptor::with_age(NodeId::new(1), NatClass::Public, 2);
        assert!(new.is_newer_than(&old));
        assert!(!old.is_newer_than(&new));
        assert!(!new.is_newer_than(&new));
    }

    #[test]
    fn wire_size_is_the_papers_compact_encoding() {
        assert_eq!(DESCRIPTOR_WIRE_BYTES, 12);
    }
}
