//! Node descriptors: the entries of partial views.

use croupier_simulator::{InlineVec, NatClass, NodeId};
use serde::{Deserialize, Serialize};

/// Serialized size of one descriptor on the wire, in bytes: a 6-byte address (IPv4 + port),
/// a 4-byte node identifier, one byte of NAT type and one byte of age. Matches the compact
/// encodings used in the paper's overhead accounting.
pub const DESCRIPTOR_WIRE_BYTES: usize = 12;

/// Inline capacity of [`DescriptorBatch`]: the largest descriptor list a default-config
/// shuffle produces, with headroom. A shuffle ships `ceil(shuffle_size / 2) + 1`
/// descriptors per view (subset plus the sender's own entry; paper default
/// `shuffle_size = 5` → 4), and the single-view baselines ship `shuffle_size + 1` (→ 6).
/// Oversized experiment configurations spill to the heap transparently.
pub const DESCRIPTOR_INLINE_CAPACITY: usize = 8;

/// A bounded descriptor list as carried in shuffle messages and exchange bookkeeping.
///
/// Backed by [`InlineVec`], so default-config payloads live inline in the message and the
/// shuffle hot path performs no heap allocation (the `Vec`-based payloads this replaced
/// were the dominant allocation source per exchange). With the packed 8-byte
/// [`Descriptor`] the inline storage is 64 bytes per batch, half its former footprint.
pub type DescriptorBatch = InlineVec<Descriptor, DESCRIPTOR_INLINE_CAPACITY>;

/// Number of low bits of the packed word holding the node identifier.
const NODE_BITS: u32 = 40;
/// Bit position of the NAT-class flag (`0` = public, `1` = private).
const CLASS_BIT: u32 = NODE_BITS;
/// Bit position where the age field starts.
const AGE_SHIFT: u32 = NODE_BITS + 1;
/// Mask selecting the node-identifier bits.
const NODE_MASK: u64 = (1 << NODE_BITS) - 1;

/// The largest age a descriptor can carry: ages occupy the top 23 bits of the packed
/// word and saturate here instead of wrapping. Runs are bounded by round counts orders of
/// magnitude below this, so saturation is unobservable in practice.
pub const AGE_MAX: u32 = (1 << (64 - AGE_SHIFT)) - 1;

/// A descriptor of a node as carried in partial views and shuffle messages.
///
/// A descriptor records the node's address (its [`NodeId`] in the simulation), its NAT
/// class, and a timestamp expressed as the number of gossip rounds since the descriptor was
/// created (its *age*). Fresh descriptors have age zero; ages increase by one per round and
/// drive both the tail selection policy and descriptor replacement on merge.
///
/// # Memory layout
///
/// The three fields are bit-packed into a single `u64` — node identifier in bits `0..40`,
/// NAT class in bit `40`, age in bits `41..64` — so a descriptor is 8 bytes instead of the
/// 12–16 a padded `(u64, enum, u32)` struct occupies. A [`crate::View`] of descriptors is
/// therefore a flat `u64` array, which is what lets million-node populations hold their
/// views (and the pooled shuffle payloads built from them) comfortably in memory. Fields
/// are reached through the [`node`](Descriptor::node), [`class`](Descriptor::class) and
/// [`age`](Descriptor::age) accessors.
///
/// # Examples
///
/// ```
/// use croupier::Descriptor;
/// use croupier_simulator::{NatClass, NodeId};
///
/// let mut d = Descriptor::new(NodeId::new(3), NatClass::Private);
/// assert_eq!(d.age(), 0);
/// d.grow_older();
/// assert_eq!(d.age(), 1);
/// assert!(Descriptor::new(NodeId::new(3), NatClass::Private).is_newer_than(&d));
/// ```
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default, Serialize, Deserialize)]
pub struct Descriptor(u64);

impl Descriptor {
    /// Creates a fresh descriptor (age zero).
    ///
    /// # Panics
    ///
    /// Panics if the node identifier does not fit the packed layout's 40 id bits (a
    /// trillion-node address space; simulation populations sit far below it).
    pub fn new(node: NodeId, class: NatClass) -> Self {
        Descriptor::with_age(node, class, 0)
    }

    /// Creates a descriptor with an explicit age; mostly useful in tests. Ages beyond
    /// [`AGE_MAX`] saturate, matching [`grow_older`](Descriptor::grow_older).
    ///
    /// # Panics
    ///
    /// Panics if the node identifier does not fit the packed layout's 40 id bits.
    pub fn with_age(node: NodeId, class: NatClass, age: u32) -> Self {
        let id = node.as_u64();
        assert!(
            id <= NODE_MASK,
            "node id {id} exceeds the descriptor's 40-bit address space"
        );
        let class_bit = match class {
            NatClass::Public => 0,
            NatClass::Private => 1u64 << CLASS_BIT,
        };
        let age = age.min(AGE_MAX) as u64;
        Descriptor(id | class_bit | (age << AGE_SHIFT))
    }

    /// The described node.
    pub const fn node(self) -> NodeId {
        NodeId::new(self.0 & NODE_MASK)
    }

    /// The described node's connectivity class.
    pub const fn class(self) -> NatClass {
        if self.0 & (1 << CLASS_BIT) == 0 {
            NatClass::Public
        } else {
            NatClass::Private
        }
    }

    /// Rounds elapsed since the descriptor was created by the described node.
    pub const fn age(self) -> u32 {
        (self.0 >> AGE_SHIFT) as u32
    }

    /// Increments the descriptor's age by one round (saturating at [`AGE_MAX`]).
    pub fn grow_older(&mut self) {
        if self.age() < AGE_MAX {
            self.0 += 1 << AGE_SHIFT;
        }
    }

    /// Returns `true` if `self` is strictly fresher (lower age) than `other`.
    pub fn is_newer_than(&self, other: &Descriptor) -> bool {
        self.age() < other.age()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_descriptors_are_fresh() {
        let d = Descriptor::new(NodeId::new(1), NatClass::Public);
        assert_eq!(d.age(), 0);
        assert_eq!(d.node(), NodeId::new(1));
        assert_eq!(d.class(), NatClass::Public);
    }

    #[test]
    fn packing_round_trips_all_fields() {
        let id = NodeId::new((1 << 40) - 1);
        for class in [NatClass::Public, NatClass::Private] {
            for age in [0, 1, 17, AGE_MAX] {
                let d = Descriptor::with_age(id, class, age);
                assert_eq!(d.node(), id);
                assert_eq!(d.class(), class);
                assert_eq!(d.age(), age);
            }
        }
    }

    #[test]
    fn packed_descriptor_is_eight_bytes() {
        assert_eq!(std::mem::size_of::<Descriptor>(), 8);
    }

    #[test]
    fn default_descriptor_is_node_zero_public_fresh() {
        let d = Descriptor::default();
        assert_eq!(d, Descriptor::new(NodeId::new(0), NatClass::Public));
    }

    #[test]
    #[should_panic(expected = "40-bit address space")]
    fn oversized_node_ids_are_rejected() {
        let _ = Descriptor::new(NodeId::new(1 << 40), NatClass::Public);
    }

    #[test]
    fn aging_saturates() {
        let mut d = Descriptor::with_age(NodeId::new(1), NatClass::Public, AGE_MAX - 1);
        d.grow_older();
        assert_eq!(d.age(), AGE_MAX);
        d.grow_older();
        assert_eq!(d.age(), AGE_MAX);
        let clamped = Descriptor::with_age(NodeId::new(1), NatClass::Public, u32::MAX);
        assert_eq!(clamped.age(), AGE_MAX);
    }

    #[test]
    fn freshness_comparison() {
        let old = Descriptor::with_age(NodeId::new(1), NatClass::Public, 5);
        let new = Descriptor::with_age(NodeId::new(1), NatClass::Public, 2);
        assert!(new.is_newer_than(&old));
        assert!(!old.is_newer_than(&new));
        assert!(!new.is_newer_than(&new));
    }

    #[test]
    fn wire_size_is_the_papers_compact_encoding() {
        assert_eq!(DESCRIPTOR_WIRE_BYTES, 12);
    }
}
