//! The Croupier node state machine (Algorithm 2 of the paper).
//!
//! The state machine is written against the [`Context`] facade over the simulator's
//! [`Transport`](croupier_simulator::Transport) seam: sends, timers and address
//! observations go through that one object, and no engine type appears anywhere in this
//! crate.

use croupier_simulator::{Context, NatClass, NodeId, Protocol, PssNode, RetryPolicy, TimerKey};
use rand::rngs::SmallRng;

use crate::config::{CroupierConfig, MergePolicy, SelectionPolicy};
use crate::descriptor::{Descriptor, DescriptorBatch};
use crate::estimator::RatioEstimator;
use crate::messages::{CroupierMessage, ShufflePayload};
use crate::sampler::sample_from_views;
use crate::view::View;

/// Bookkeeping for the shuffle request currently in flight, needed by the swapper merge
/// policy when the response arrives. The subsets are stored inline, so replacing the
/// pending exchange every round costs no allocation.
#[derive(Clone, Debug)]
struct PendingShuffle {
    peer: NodeId,
    sent_public: DescriptorBatch,
    sent_private: DescriptorBatch,
    /// Monotonic exchange number; doubles as the retry-timer key so timers from
    /// superseded exchanges are recognisably stale.
    seq: u64,
    /// Requests sent so far minus one (the initial send is attempt zero).
    attempt: u32,
}

/// Upper bound on recycled payload boxes kept per node. One box circulates per exchange
/// in steady state (a request's box comes back as a response, a croupier rewrites the
/// request's box into its response), so the pool only has to absorb transient imbalance
/// from lost or late messages.
const PAYLOAD_POOL_LIMIT: usize = 4;

/// A node running the Croupier peer-sampling protocol.
///
/// `CroupierNode` keeps two bounded views (public and private), a
/// [`RatioEstimator`], and implements the periodic shuffle of Algorithm 2:
///
/// * every round the node selects the *oldest* entry of its **public** view and sends it a
///   shuffle request carrying random subsets of both views plus piggy-backed ratio
///   estimates;
/// * public nodes ("croupiers") answer shuffle requests with a symmetric response and count
///   the requester's class to feed the ratio estimation;
/// * received descriptors are merged with the *swapper* policy: descriptors that were sent
///   to the peer are the first to be evicted.
///
/// See the crate-level documentation for a complete usage example.
#[derive(Clone, Debug)]
pub struct CroupierNode {
    id: NodeId,
    class: NatClass,
    config: CroupierConfig,
    public_view: View,
    private_view: View,
    estimator: RatioEstimator,
    pending: Option<PendingShuffle>,
    /// Recycled shuffle-payload boxes (see [`ShufflePayload`] for the discipline).
    /// Boxes are stored as boxes on purpose: they are handed to [`CroupierMessage`]
    /// verbatim, so recycling never re-allocates the payload.
    #[allow(clippy::vec_box)]
    payload_pool: Vec<Box<ShufflePayload>>,
    rounds: u64,
    shuffles_received: u64,
    responses_received: u64,
    /// Exchange counter feeding [`PendingShuffle::seq`].
    shuffle_seq: u64,
    retries_fired: u64,
    abandoned_exchanges: u64,
}

impl CroupierNode {
    /// Creates a Croupier node with identity `id` and connectivity class `class`.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent (see [`CroupierConfig::validate`]).
    pub fn new(id: NodeId, class: NatClass, config: CroupierConfig) -> Self {
        config.validate();
        let estimator = RatioEstimator::new(class, config.local_history, config.neighbour_history);
        CroupierNode {
            id,
            class,
            public_view: View::new(config.view_size),
            private_view: View::new(config.view_size),
            estimator,
            pending: None,
            payload_pool: Vec::new(),
            rounds: 0,
            shuffles_received: 0,
            responses_received: 0,
            shuffle_seq: 0,
            retries_fired: 0,
            abandoned_exchanges: 0,
            config,
        }
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's connectivity class.
    pub fn class(&self) -> NatClass {
        self.class
    }

    /// The node's configuration.
    pub fn config(&self) -> &CroupierConfig {
        &self.config
    }

    /// The public view.
    pub fn public_view(&self) -> &View {
        &self.public_view
    }

    /// The private view.
    pub fn private_view(&self) -> &View {
        &self.private_view
    }

    /// The ratio estimator.
    pub fn estimator(&self) -> &RatioEstimator {
        &self.estimator
    }

    /// Number of shuffle requests this node has received (non-zero only for croupiers).
    pub fn shuffle_requests_received(&self) -> u64 {
        self.shuffles_received
    }

    /// Number of shuffle responses this node has received.
    pub fn shuffle_responses_received(&self) -> u64 {
        self.responses_received
    }

    /// Seeds the public view from the bootstrap server.
    fn bootstrap(&mut self, ctx: &mut Context<'_, CroupierMessage>) {
        let count = self.config.bootstrap_size.min(self.config.view_size);
        for node in ctx.bootstrap_sample(count) {
            if node != self.id {
                self.public_view
                    .insert(Descriptor::new(node, NatClass::Public));
            }
        }
    }

    /// The descriptor this node advertises about itself (age zero).
    fn own_descriptor(&self) -> Descriptor {
        Descriptor::new(self.id, self.class)
    }

    /// A cleared payload box from the pool, or a fresh one if the pool is empty.
    fn take_payload(&mut self) -> Box<ShufflePayload> {
        match self.payload_pool.pop() {
            Some(mut payload) => {
                payload.public_descriptors.clear();
                payload.private_descriptors.clear();
                payload.estimates.clear();
                payload
            }
            None => Box::default(),
        }
    }

    /// Returns a consumed payload box to the pool (bounded; excess boxes are dropped).
    fn recycle_payload(&mut self, payload: Box<ShufflePayload>) {
        if self.payload_pool.len() < PAYLOAD_POOL_LIMIT {
            self.payload_pool.push(payload);
        }
    }

    /// Splits the shuffle descriptor budget between the two views.
    ///
    /// The paper sends "a random, bounded subset" of each view with an overall exchange
    /// size of 5 descriptors (§VII-A); charging the whole budget to *each* view would make
    /// Croupier's messages systematically larger than the other protocols' and distort the
    /// overhead comparison of Fig. 7(a), so the budget is split — the public view gets the
    /// larger half.
    fn shuffle_budgets(&self) -> (usize, usize) {
        let public = self.config.shuffle_size.div_ceil(2);
        let private = self.config.shuffle_size - public;
        (public, private)
    }

    /// Selects (and removes) the shuffle target from the public view according to the
    /// configured selection policy.
    fn select_target(&mut self, rng: &mut SmallRng) -> Option<NodeId> {
        let target = match self.config.selection {
            SelectionPolicy::Tail => self.public_view.oldest().map(|d| d.node()),
            SelectionPolicy::Random => self.public_view.random(rng).map(|d| d.node()),
        }?;
        self.public_view.remove(target);
        Some(target)
    }

    /// Splits received descriptors by their class, dropping our own descriptor.
    fn split_by_class(&self, payload: &ShufflePayload) -> (DescriptorBatch, DescriptorBatch) {
        let mut public = DescriptorBatch::new();
        let mut private = DescriptorBatch::new();
        for d in payload
            .public_descriptors
            .iter()
            .chain(payload.private_descriptors.iter())
        {
            if d.node() == self.id {
                continue;
            }
            match d.class() {
                NatClass::Public => public.push(*d),
                NatClass::Private => private.push(*d),
            }
        }
        (public, private)
    }

    /// Merges received descriptors into both views using the configured merge policy.
    fn merge(
        &mut self,
        sent_public: &[Descriptor],
        sent_private: &[Descriptor],
        received_public: &[Descriptor],
        received_private: &[Descriptor],
    ) {
        match self.config.merge {
            MergePolicy::Swapper => {
                self.public_view
                    .apply_exchange_swapper(sent_public, received_public, self.id);
                self.private_view
                    .apply_exchange_swapper(sent_private, received_private, self.id);
            }
            MergePolicy::Healer => {
                self.public_view
                    .apply_exchange_healer(received_public, self.id);
                self.private_view
                    .apply_exchange_healer(received_private, self.id);
            }
        }
    }

    fn handle_request(
        &mut self,
        from: NodeId,
        mut payload: Box<ShufflePayload>,
        ctx: &mut Context<'_, CroupierMessage>,
    ) {
        if self.class.is_private() {
            // Only croupiers handle shuffle requests. A private node can only receive one
            // through a stale descriptor that mis-states its class; drop it.
            self.recycle_payload(payload);
            return;
        }
        self.shuffles_received += 1;
        self.estimator.record_request(payload.sender_class);

        // Prepare the response subsets *before* merging, exactly as in Algorithm 2
        // (lines 31–33 precede lines 34–36).
        let (public_budget, private_budget) = self.shuffle_budgets();
        let reply_public = self.public_view.random_subset(public_budget, ctx.rng());
        let reply_private = self.private_view.random_subset(private_budget, ctx.rng());
        let reply_estimates =
            self.estimator
                .share(self.config.estimate_share_size, self.id, ctx.rng());

        let (received_public, received_private) = self.split_by_class(&payload);
        self.merge(
            &reply_public,
            &reply_private,
            &received_public,
            &received_private,
        );
        self.estimator.ingest(&payload.estimates, self.id);

        // The request's own box becomes the response: zero pool churn on croupiers.
        payload.sender_class = self.class;
        payload.public_descriptors = reply_public;
        payload.private_descriptors = reply_private;
        payload.estimates = reply_estimates;
        ctx.send(from, CroupierMessage::ShuffleResponse(payload));
    }

    fn handle_response(&mut self, from: NodeId, payload: Box<ShufflePayload>) {
        self.responses_received += 1;
        let (sent_public, sent_private) = match self.pending.take() {
            Some(pending) if pending.peer == from => (pending.sent_public, pending.sent_private),
            other => {
                // Either an unexpected response or one from a previous round; merge it
                // anyway but without swapper eviction candidates.
                self.pending = other;
                (DescriptorBatch::new(), DescriptorBatch::new())
            }
        };
        let (received_public, received_private) = self.split_by_class(&payload);
        self.merge(
            &sent_public,
            &sent_private,
            &received_public,
            &received_private,
        );
        self.estimator.ingest(&payload.estimates, self.id);
        self.recycle_payload(payload);
    }
}

impl Protocol for CroupierNode {
    type Message = CroupierMessage;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.bootstrap(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.rounds += 1;
        self.public_view.increment_ages();
        self.private_view.increment_ages();
        self.estimator.advance_round();

        if self.public_view.is_empty() {
            if self.config.rebootstrap_on_empty {
                self.bootstrap(ctx);
            }
            return;
        }
        let Some(target) = self.select_target(ctx.rng()) else {
            return;
        };

        let (public_budget, private_budget) = self.shuffle_budgets();
        let sent_public = self.public_view.random_subset(public_budget, ctx.rng());
        let sent_private = self.private_view.random_subset(private_budget, ctx.rng());
        let estimates = self
            .estimator
            .share(self.config.estimate_share_size, self.id, ctx.rng());

        let mut request = self.take_payload();
        request.sender_class = self.class;
        request.public_descriptors = sent_public.clone();
        request.private_descriptors = sent_private.clone();
        request.estimates = estimates;
        match self.class {
            NatClass::Public => request.public_descriptors.push(self.own_descriptor()),
            NatClass::Private => request.private_descriptors.push(self.own_descriptor()),
        }

        if self.pending.is_some() {
            // The previous exchange is still unanswered and its retry budget has not run
            // out yet; starting a new one silently discards it, so account for it here
            // rather than leaking it without trace.
            self.abandoned_exchanges += 1;
        }
        self.shuffle_seq += 1;
        self.pending = Some(PendingShuffle {
            peer: target,
            sent_public,
            sent_private,
            seq: self.shuffle_seq,
            attempt: 0,
        });

        ctx.send(target, CroupierMessage::ShuffleRequest(request));
        let policy = RetryPolicy::for_round_period(ctx.round_period());
        ctx.set_timer(policy.backoff(0), TimerKey::new(self.shuffle_seq));
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    ) {
        match msg {
            CroupierMessage::ShuffleRequest(payload) => self.handle_request(from, payload, ctx),
            CroupierMessage::ShuffleResponse(payload) => self.handle_response(from, payload),
        }
    }

    /// Retry timer for the in-flight shuffle: resend the same subsets with capped
    /// exponential backoff, and abandon the exchange once the budget is spent. Timers
    /// from superseded exchanges (their `seq` no longer matches) are ignored.
    fn on_timer(&mut self, key: TimerKey, ctx: &mut Context<'_, Self::Message>) {
        let (peer, next_attempt, sent_public, sent_private) = match self.pending.as_ref() {
            Some(p) if p.seq == key.as_u64() => (
                p.peer,
                p.attempt + 1,
                p.sent_public.clone(),
                p.sent_private.clone(),
            ),
            _ => return,
        };
        let policy = RetryPolicy::for_round_period(ctx.round_period());
        if policy.exhausted(next_attempt) {
            self.pending = None;
            self.abandoned_exchanges += 1;
            return;
        }
        if let Some(p) = self.pending.as_mut() {
            p.attempt = next_attempt;
        }
        // Same subsets as the original request (the swapper bookkeeping must keep
        // describing what the peer would actually receive), fresh estimates.
        let estimates = self
            .estimator
            .share(self.config.estimate_share_size, self.id, ctx.rng());
        let mut request = self.take_payload();
        request.sender_class = self.class;
        request.public_descriptors = sent_public;
        request.private_descriptors = sent_private;
        request.estimates = estimates;
        match self.class {
            NatClass::Public => request.public_descriptors.push(self.own_descriptor()),
            NatClass::Private => request.private_descriptors.push(self.own_descriptor()),
        }
        self.retries_fired += 1;
        ctx.send(peer, CroupierMessage::ShuffleRequest(request));
        ctx.set_timer(policy.backoff(next_attempt), key);
    }
}

impl PssNode for CroupierNode {
    fn nat_class(&self) -> NatClass {
        self.class
    }

    fn known_peers(&self) -> Vec<NodeId> {
        let mut peers = self.public_view.nodes();
        peers.extend(self.private_view.nodes());
        peers
    }

    fn for_each_known_peer(&self, visit: &mut dyn FnMut(NodeId)) {
        for descriptor in self.public_view.iter().chain(self.private_view.iter()) {
            visit(descriptor.node());
        }
    }

    fn ratio_estimate(&self) -> Option<f64> {
        self.estimator.estimate()
    }

    fn draw_sample(&mut self, rng: &mut SmallRng) -> Option<NodeId> {
        sample_from_views(
            &self.public_view,
            &self.private_view,
            self.estimator.estimate(),
            rng,
        )
    }

    fn rounds_executed(&self) -> u64 {
        self.rounds
    }

    fn retries_fired(&self) -> u64 {
        self.retries_fired
    }

    fn exchanges_abandoned(&self) -> u64 {
        self.abandoned_exchanges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croupier_nat::NatTopologyBuilder;
    use croupier_simulator::{Simulation, SimulationConfig, WireSize};

    /// Builds a simulation of `n_public` + `n_private` Croupier nodes behind a NAT topology.
    fn build_sim(
        n_public: u64,
        n_private: u64,
        config: CroupierConfig,
        seed: u64,
    ) -> Simulation<CroupierNode> {
        let topology = NatTopologyBuilder::new(seed).build();
        let mut sim = Simulation::new(SimulationConfig::default().with_seed(seed));
        sim.set_delivery_filter(topology.clone());
        for i in 0..(n_public + n_private) {
            let id = NodeId::new(i);
            let class = if i < n_public {
                NatClass::Public
            } else {
                NatClass::Private
            };
            topology.add_node(id, class);
            if class.is_public() {
                sim.register_public(id);
            }
            sim.add_node(id, CroupierNode::new(id, class, config.clone()));
        }
        sim
    }

    #[test]
    fn bootstrap_fills_the_public_view() {
        let mut sim = build_sim(10, 10, CroupierConfig::default(), 1);
        sim.run_for_rounds(1);
        for (id, node) in sim.nodes() {
            assert!(
                !node.public_view().is_empty(),
                "node {id} should know at least one public node after bootstrap"
            );
        }
    }

    #[test]
    fn views_converge_and_respect_class_separation() {
        let mut sim = build_sim(5, 20, CroupierConfig::default(), 2);
        sim.run_for_rounds(50);
        for (_, node) in sim.nodes() {
            for d in node.public_view().iter() {
                assert!(
                    d.class().is_public(),
                    "public view must only hold public nodes"
                );
                assert!(d.node().as_u64() < 5);
            }
            for d in node.private_view().iter() {
                assert!(
                    d.class().is_private(),
                    "private view must only hold private nodes"
                );
                assert!(d.node().as_u64() >= 5);
            }
            assert!(!node.public_view().contains(node.id()), "no self-loop");
            assert!(!node.private_view().contains(node.id()), "no self-loop");
        }
    }

    #[test]
    fn private_nodes_fill_their_private_views_despite_nats() {
        let mut sim = build_sim(5, 20, CroupierConfig::default(), 3);
        sim.run_for_rounds(60);
        let underfilled = sim
            .nodes()
            .filter(|(_, n)| n.private_view().len() < 5)
            .count();
        assert!(
            underfilled <= 2,
            "almost every node should have discovered private nodes, {underfilled} have not"
        );
    }

    #[test]
    fn ratio_estimates_converge_to_the_true_ratio() {
        let mut sim = build_sim(10, 40, CroupierConfig::default(), 4);
        sim.run_for_rounds(80);
        let mut worst: f64 = 0.0;
        for (_, node) in sim.nodes() {
            let est = node
                .ratio_estimate()
                .expect("every node should have an estimate");
            worst = worst.max((est - 0.2).abs());
        }
        assert!(
            worst < 0.08,
            "worst-case estimation error too high: {worst}"
        );
    }

    #[test]
    fn croupiers_receive_requests_private_nodes_do_not() {
        let mut sim = build_sim(5, 20, CroupierConfig::default(), 5);
        sim.run_for_rounds(40);
        for (_, node) in sim.nodes() {
            match node.class() {
                NatClass::Public => assert!(node.shuffle_requests_received() > 0),
                NatClass::Private => assert_eq!(node.shuffle_requests_received(), 0),
            }
            assert!(node.shuffle_responses_received() > 0);
        }
    }

    #[test]
    fn samples_cover_both_classes() {
        let mut sim = build_sim(5, 20, CroupierConfig::default(), 6);
        sim.run_for_rounds(60);
        let mut sampled_public = 0;
        let mut sampled_private = 0;
        for _ in 0..200 {
            for id in sim.node_ids() {
                if let Some(sample) = sim.sample_from(id) {
                    if sample.as_u64() < 5 {
                        sampled_public += 1;
                    } else {
                        sampled_private += 1;
                    }
                }
            }
        }
        assert!(sampled_public > 0);
        assert!(sampled_private > 0);
        let fraction = sampled_public as f64 / (sampled_public + sampled_private) as f64;
        assert!(
            (fraction - 0.2).abs() < 0.1,
            "sampled public fraction {fraction} should approximate the 0.2 ratio"
        );
    }

    #[test]
    fn message_sizes_stay_bounded() {
        let config = CroupierConfig::default();
        let mut sim = build_sim(5, 20, config.clone(), 7);
        sim.run_for_rounds(30);
        // Upper bound: header + framing + (2*shuffle_size + 1) descriptors + (share+1) estimates.
        let bound = 28
            + 6
            + (2 * config.shuffle_size + 1) * crate::DESCRIPTOR_WIRE_BYTES
            + (config.estimate_share_size + 1) * crate::ESTIMATE_WIRE_BYTES;
        let node = sim.node(NodeId::new(3)).unwrap().clone();
        let payload = ShufflePayload {
            sender_class: node.class(),
            public_descriptors: node
                .public_view()
                .iter()
                .copied()
                .take(config.shuffle_size)
                .collect(),
            private_descriptors: node
                .private_view()
                .iter()
                .copied()
                .take(config.shuffle_size)
                .collect(),
            estimates: Default::default(),
        };
        assert!(CroupierMessage::ShuffleRequest(Box::new(payload)).wire_size() <= bound);
    }

    #[test]
    fn healer_and_random_policies_still_converge() {
        let config = CroupierConfig::default()
            .with_selection(SelectionPolicy::Random)
            .with_merge(MergePolicy::Healer);
        let mut sim = build_sim(5, 20, config, 8);
        sim.run_for_rounds(60);
        for (_, node) in sim.nodes() {
            assert!(node.ratio_estimate().is_some());
            assert!(!node.public_view().is_empty());
        }
    }

    #[test]
    fn isolated_node_without_bootstrap_stays_silent() {
        // A single node with nothing in its public view never sends anything.
        let mut sim: Simulation<CroupierNode> =
            Simulation::new(SimulationConfig::default().with_seed(9));
        sim.add_node(
            NodeId::new(0),
            CroupierNode::new(NodeId::new(0), NatClass::Private, CroupierConfig::default()),
        );
        sim.run_for_rounds(10);
        assert_eq!(sim.network_stats().total(), 0);
        assert_eq!(sim.node(NodeId::new(0)).unwrap().rounds_executed(), 10);
    }

    #[test]
    fn timeouts_fire_retries_and_abandon_unanswered_exchanges() {
        use croupier_simulator::BernoulliLoss;
        let mut sim = build_sim(5, 20, CroupierConfig::default(), 11);
        sim.set_loss_model(BernoulliLoss::new(1.0));
        sim.run_for_rounds(10);
        let mut retries = 0;
        let mut abandoned = 0;
        for (_, node) in sim.nodes() {
            assert_eq!(node.shuffle_responses_received(), 0);
            retries += PssNode::retries_fired(node);
            abandoned += PssNode::exchanges_abandoned(node);
        }
        assert!(retries > 0, "no retry fired under 100% loss");
        assert!(abandoned > 0, "no unanswered exchange was abandoned");
        // The retry budget bounds the amplification: at most `max_retries` resends per
        // exchange, and every exchange is either abandoned or still pending at the end.
        let policy = RetryPolicy::for_round_period(sim.config().round_period);
        let exchanges = abandoned + sim.len() as u64;
        assert!(retries <= exchanges * policy.max_retries as u64);
    }

    #[test]
    fn retries_recover_exchanges_under_heavy_loss() {
        use croupier_simulator::BernoulliLoss;
        let mut sim = build_sim(5, 20, CroupierConfig::default(), 12);
        sim.set_loss_model(BernoulliLoss::new(0.4));
        sim.run_for_rounds(40);
        let mut responses = 0;
        let mut retries = 0;
        for (_, node) in sim.nodes() {
            responses += node.shuffle_responses_received();
            retries += PssNode::retries_fired(node);
        }
        assert!(retries > 0, "40% loss must trigger some retries");
        assert!(
            responses > 0,
            "shuffles must still complete despite heavy loss"
        );
    }

    #[test]
    fn known_peers_reports_union_of_views() {
        let mut sim = build_sim(5, 10, CroupierConfig::default(), 10);
        sim.run_for_rounds(30);
        let node = sim.node(NodeId::new(7)).unwrap();
        let peers = node.known_peers();
        assert_eq!(
            peers.len(),
            node.public_view().len() + node.private_view().len()
        );
    }
}
