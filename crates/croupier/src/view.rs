//! Bounded partial views and the paper's view-exchange (merge) procedures.

use croupier_simulator::NodeId;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::descriptor::{Descriptor, DescriptorBatch};

/// A bounded partial view: an ordered set of [`Descriptor`]s with at most `capacity`
/// entries and at most one entry per node.
///
/// Croupier keeps two views per node (public and private); the baseline protocols reuse the
/// same type for their single view. The type implements the operations of Algorithm 2 of
/// the paper: aging, tail (oldest) selection, random subset extraction, and the
/// `updateView` merge with the *swapper* replacement policy (plus the *healer* policy for
/// ablation experiments).
///
/// # Examples
///
/// ```
/// use croupier::{Descriptor, View};
/// use croupier_simulator::{NatClass, NodeId};
///
/// let mut view = View::new(3);
/// for i in 0..5u64 {
///     view.insert(Descriptor::new(NodeId::new(i), NatClass::Public));
/// }
/// // Bounded at capacity, keeping the first three inserted.
/// assert_eq!(view.len(), 3);
/// view.increment_ages();
/// assert!(view.iter().all(|d| d.age() == 1));
/// ```
#[derive(Clone, Debug, Default, PartialEq)]
pub struct View {
    capacity: usize,
    entries: Vec<Descriptor>,
}

impl View {
    /// Creates an empty view with the given capacity.
    pub fn new(capacity: usize) -> Self {
        View {
            capacity,
            entries: Vec::with_capacity(capacity),
        }
    }

    /// Maximum number of entries.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Current number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` when the view holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Returns `true` when the view is at capacity.
    pub fn is_full(&self) -> bool {
        self.entries.len() >= self.capacity
    }

    /// Returns `true` if a descriptor for `node` is present.
    pub fn contains(&self, node: NodeId) -> bool {
        self.entries.iter().any(|d| d.node() == node)
    }

    /// The descriptor for `node`, if present.
    pub fn get(&self, node: NodeId) -> Option<&Descriptor> {
        self.entries.iter().find(|d| d.node() == node)
    }

    /// Iterates over the descriptors in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = &Descriptor> {
        self.entries.iter()
    }

    /// The node identifiers currently in the view.
    pub fn nodes(&self) -> Vec<NodeId> {
        self.entries.iter().map(|d| d.node()).collect()
    }

    /// Ages every descriptor by one round.
    pub fn increment_ages(&mut self) {
        for d in &mut self.entries {
            d.grow_older();
        }
    }

    /// Inserts `descriptor` if its node is absent and there is free space.
    ///
    /// Returns `true` if the descriptor was inserted. Use
    /// [`refresh_or_insert`](View::refresh_or_insert) to also update existing entries.
    pub fn insert(&mut self, descriptor: Descriptor) -> bool {
        if self.contains(descriptor.node()) || self.is_full() {
            return false;
        }
        self.entries.push(descriptor);
        true
    }

    /// Inserts `descriptor`, or — if an entry for the same node already exists — replaces
    /// it when `descriptor` is fresher. Returns `true` if the view changed.
    pub fn refresh_or_insert(&mut self, descriptor: Descriptor) -> bool {
        if let Some(existing) = self
            .entries
            .iter_mut()
            .find(|d| d.node() == descriptor.node())
        {
            if descriptor.is_newer_than(existing) {
                *existing = descriptor;
                return true;
            }
            return false;
        }
        self.insert(descriptor)
    }

    /// Removes and returns the descriptor for `node`.
    pub fn remove(&mut self, node: NodeId) -> Option<Descriptor> {
        let index = self.entries.iter().position(|d| d.node() == node)?;
        Some(self.entries.remove(index))
    }

    /// The descriptor with the highest age (ties broken by insertion order). This is the
    /// *tail* selection policy of the paper.
    pub fn oldest(&self) -> Option<&Descriptor> {
        self.entries.iter().max_by_key(|d| d.age())
    }

    /// A descriptor chosen uniformly at random.
    pub fn random(&self, rng: &mut SmallRng) -> Option<&Descriptor> {
        self.entries.choose(rng)
    }

    /// Up to `count` distinct descriptors chosen uniformly at random, in random order.
    ///
    /// Implemented as a partial Fisher–Yates over the entries in place: it draws only
    /// `min(count, len)` random numbers, and the subset is returned inline (a
    /// [`DescriptorBatch`]), so a default-config shuffle extracts its subsets with zero
    /// heap allocations. The side effect is that the selected entries are swapped to the
    /// front of the view; entry order carries no protocol meaning (membership, ages and
    /// capacity are unaffected), it only breaks ties in [`oldest`](View::oldest)
    /// deterministically.
    pub fn random_subset(&mut self, count: usize, rng: &mut SmallRng) -> DescriptorBatch {
        let len = self.entries.len();
        let count = count.min(len);
        let mut subset = DescriptorBatch::new();
        for i in 0..count {
            // gen_range panics on an empty range; the final position needs no draw.
            if len - i > 1 {
                let j = rng.gen_range(i..len);
                self.entries.swap(i, j);
            }
            subset.push(self.entries[i]);
        }
        subset
    }

    /// The paper's `updateView` procedure (Algorithm 2, lines 46–58) with the *swapper*
    /// replacement policy.
    ///
    /// For every received descriptor (skipping `self_node` and stale duplicates):
    ///
    /// 1. if the node is already in the view, keep whichever descriptor is fresher;
    /// 2. otherwise, if there is free space, add it;
    /// 3. otherwise, evict one of the descriptors in `sent` (the entries that were shipped
    ///    to the peer in this exchange) and add the received descriptor in its place.
    pub fn apply_exchange_swapper(
        &mut self,
        sent: &[Descriptor],
        received: &[Descriptor],
        self_node: NodeId,
    ) {
        // Eviction candidates are consumed front-to-back straight off `sent`; the cursor
        // replaces the scratch list of node ids the old implementation allocated per
        // exchange.
        let mut next_victim = 0usize;
        for descriptor in received {
            if descriptor.node() == self_node {
                continue;
            }
            if self.contains(descriptor.node()) {
                self.refresh_or_insert(*descriptor);
                continue;
            }
            if !self.is_full() {
                self.insert(*descriptor);
                continue;
            }
            // Swapper: evict an entry we sent to the peer; the peer now knows it, so no
            // information is lost system-wide. If no sent entry is left to swap out, the
            // received descriptor is dropped.
            while next_victim < sent.len() {
                let victim = sent[next_victim].node();
                next_victim += 1;
                if self.remove(victim).is_some() {
                    self.insert(*descriptor);
                    break;
                }
            }
        }
    }

    /// The *healer* merge policy: union the view with the received descriptors and keep the
    /// freshest `capacity` entries. Used by ablation experiments only.
    pub fn apply_exchange_healer(&mut self, received: &[Descriptor], self_node: NodeId) {
        for descriptor in received {
            if descriptor.node() == self_node {
                continue;
            }
            if let Some(existing) = self
                .entries
                .iter_mut()
                .find(|d| d.node() == descriptor.node())
            {
                if descriptor.is_newer_than(existing) {
                    *existing = *descriptor;
                }
            } else {
                self.entries.push(*descriptor);
            }
        }
        self.entries.sort_by_key(|d| d.age());
        self.entries.truncate(self.capacity);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croupier_simulator::NatClass;
    use rand::SeedableRng;

    fn d(node: u64, age: u32) -> Descriptor {
        Descriptor::with_age(NodeId::new(node), NatClass::Public, age)
    }

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(77)
    }

    #[test]
    fn insert_respects_capacity_and_uniqueness() {
        let mut v = View::new(2);
        assert!(v.insert(d(1, 0)));
        assert!(!v.insert(d(1, 5)), "duplicate node rejected");
        assert!(v.insert(d(2, 0)));
        assert!(!v.insert(d(3, 0)), "capacity reached");
        assert_eq!(v.len(), 2);
        assert!(v.is_full());
    }

    #[test]
    fn refresh_or_insert_keeps_the_freshest() {
        let mut v = View::new(4);
        v.insert(d(1, 5));
        assert!(
            v.refresh_or_insert(d(1, 2)),
            "newer descriptor replaces older"
        );
        assert_eq!(v.get(NodeId::new(1)).unwrap().age(), 2);
        assert!(!v.refresh_or_insert(d(1, 9)), "older descriptor is ignored");
        assert_eq!(v.get(NodeId::new(1)).unwrap().age(), 2);
    }

    #[test]
    fn oldest_implements_tail_selection() {
        let mut v = View::new(4);
        v.insert(d(1, 3));
        v.insert(d(2, 7));
        v.insert(d(3, 1));
        assert_eq!(v.oldest().unwrap().node(), NodeId::new(2));
    }

    #[test]
    fn increment_ages_touches_every_entry() {
        let mut v = View::new(4);
        v.insert(d(1, 0));
        v.insert(d(2, 4));
        v.increment_ages();
        assert_eq!(v.get(NodeId::new(1)).unwrap().age(), 1);
        assert_eq!(v.get(NodeId::new(2)).unwrap().age(), 5);
    }

    #[test]
    fn random_subset_is_bounded_and_distinct() {
        let mut v = View::new(10);
        for i in 0..10 {
            v.insert(d(i, 0));
        }
        let mut r = rng();
        let subset = v.random_subset(4, &mut r);
        assert_eq!(subset.len(), 4);
        let mut nodes: Vec<_> = subset.iter().map(|x| x.node()).collect();
        nodes.sort();
        nodes.dedup();
        assert_eq!(nodes.len(), 4);
        assert!(v.random_subset(20, &mut r).len() == 10);
        assert!(View::new(3).random_subset(2, &mut r).is_empty());
        assert_eq!(v.len(), 10, "in-place selection must not change membership");
    }

    #[test]
    fn swapper_adds_when_space_is_free() {
        let mut v = View::new(5);
        v.insert(d(1, 0));
        v.apply_exchange_swapper(&[], &[d(2, 0), d(3, 1)], NodeId::new(99));
        assert_eq!(v.len(), 3);
        assert!(v.contains(NodeId::new(2)));
        assert!(v.contains(NodeId::new(3)));
    }

    #[test]
    fn swapper_never_adds_self() {
        let mut v = View::new(5);
        v.apply_exchange_swapper(&[], &[d(7, 0)], NodeId::new(7));
        assert!(v.is_empty());
    }

    #[test]
    fn swapper_replaces_sent_entries_when_full() {
        let mut v = View::new(3);
        v.insert(d(1, 0));
        v.insert(d(2, 0));
        v.insert(d(3, 0));
        // We sent descriptors 1 and 2 to the peer; the peer sends us 10 and 11.
        v.apply_exchange_swapper(&[d(1, 0), d(2, 0)], &[d(10, 0), d(11, 0)], NodeId::new(99));
        assert_eq!(v.len(), 3);
        assert!(!v.contains(NodeId::new(1)));
        assert!(!v.contains(NodeId::new(2)));
        assert!(v.contains(NodeId::new(3)));
        assert!(v.contains(NodeId::new(10)));
        assert!(v.contains(NodeId::new(11)));
    }

    #[test]
    fn swapper_drops_excess_when_nothing_left_to_swap() {
        let mut v = View::new(2);
        v.insert(d(1, 0));
        v.insert(d(2, 0));
        // Full view, nothing was sent: received descriptors are dropped.
        v.apply_exchange_swapper(&[], &[d(10, 0), d(11, 0)], NodeId::new(99));
        assert_eq!(v.len(), 2);
        assert!(v.contains(NodeId::new(1)));
        assert!(v.contains(NodeId::new(2)));
    }

    #[test]
    fn swapper_updates_age_of_known_nodes() {
        let mut v = View::new(2);
        v.insert(d(1, 8));
        v.insert(d(2, 0));
        v.apply_exchange_swapper(&[d(2, 0)], &[d(1, 1)], NodeId::new(99));
        // Node 1 was already known: only its age is refreshed, node 2 is not evicted.
        assert_eq!(v.get(NodeId::new(1)).unwrap().age(), 1);
        assert!(v.contains(NodeId::new(2)));
    }

    #[test]
    fn healer_keeps_the_freshest_entries() {
        let mut v = View::new(3);
        v.insert(d(1, 9));
        v.insert(d(2, 1));
        v.insert(d(3, 5));
        v.apply_exchange_healer(&[d(4, 0), d(5, 2), d(1, 3)], NodeId::new(99));
        assert_eq!(v.len(), 3);
        // Freshest three of {1:3, 2:1, 3:5, 4:0, 5:2} are 4(0), 2(1) and 5(2).
        assert!(v.contains(NodeId::new(4)));
        assert!(v.contains(NodeId::new(2)));
        assert!(v.contains(NodeId::new(5)));
    }

    #[test]
    fn remove_returns_the_descriptor() {
        let mut v = View::new(3);
        v.insert(d(1, 4));
        let removed = v.remove(NodeId::new(1)).unwrap();
        assert_eq!(removed.age(), 4);
        assert!(v.remove(NodeId::new(1)).is_none());
        assert!(v.is_empty());
    }

    #[test]
    fn nodes_lists_members() {
        let mut v = View::new(3);
        v.insert(d(5, 0));
        v.insert(d(6, 0));
        let nodes = v.nodes();
        assert!(nodes.contains(&NodeId::new(5)));
        assert!(nodes.contains(&NodeId::new(6)));
        assert_eq!(nodes.len(), 2);
    }
}
