//! The public/private ratio estimator (§VI, equations 1–9 of the paper).
//!
//! Croupiers (public nodes) count the shuffle requests they receive from public and private
//! senders per round. Over a sliding window of `α` rounds those counts yield a *local*
//! estimate `Eᵢ = Cᵤᵢ / (Cᵤᵢ + Cᵥᵢ)` (equation 6). Local estimates are piggy-backed on
//! shuffle messages and cached by every node for up to `γ` rounds; the node-level estimate
//! of ω averages the cached estimates (plus the node's own, if it is public — equations
//! 8 and 9).

use std::collections::VecDeque;

use croupier_simulator::{InlineVec, NatClass, NodeId};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

/// Serialized size of one piggy-backed estimate, in bytes: two bytes of node identifier,
/// one byte each for the public and private request counts and one byte of timestamp —
/// exactly the encoding the paper charges 5 bytes for (§VII, protocol overhead).
pub const ESTIMATE_WIRE_BYTES: usize = 5;

/// Inline capacity of [`EstimateBatch`]: the paper's default share size (10) plus the
/// sender's own estimate, with one slot of headroom. Larger share configurations spill to
/// the heap transparently.
pub const ESTIMATE_INLINE_CAPACITY: usize = 12;

/// A bounded list of piggy-backed ratio estimates as carried in shuffle messages.
pub type EstimateBatch = InlineVec<EstimateRecord, ESTIMATE_INLINE_CAPACITY>;

/// Number of low bits of [`EstimateRecord`]'s packed word holding the origin identifier;
/// the remaining 24 high bits hold the age.
const ORIGIN_BITS: u32 = 40;
/// Mask selecting the origin-identifier bits.
const ORIGIN_MASK: u64 = (1 << ORIGIN_BITS) - 1;
/// The largest age an estimate record can carry (ages saturate here instead of wrapping).
const RECORD_AGE_MAX: u32 = (1u64 << (64 - ORIGIN_BITS)) as u32 - 1;

/// A ratio estimate produced by one croupier, as carried in shuffle messages.
///
/// The origin identifier and the age are bit-packed into one `u64` (origin in bits
/// `0..40`, age in bits `40..64`), shrinking the record from 24 padded bytes to 16 — at
/// a million nodes the pooled [`EstimateBatch`]es and per-node caches built from these
/// records are a first-order memory term. The ratio stays a full `f64`: it feeds float
/// averaging whose outputs the figure tests pin byte-identical, so its precision cannot
/// be reduced. Fields are reached through [`origin`](EstimateRecord::origin) and
/// [`age`](EstimateRecord::age).
#[derive(Clone, Copy, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct EstimateRecord {
    /// Origin identifier (low 40 bits) and age (high 24 bits).
    packed: u64,
    /// The estimated public/private ratio (equation 6).
    pub ratio: f64,
}

impl EstimateRecord {
    /// Creates a fresh estimate record.
    ///
    /// # Panics
    ///
    /// Panics if the origin identifier does not fit the packed layout's 40 id bits.
    pub fn new(origin: NodeId, ratio: f64) -> Self {
        EstimateRecord::with_age(origin, ratio, 0)
    }

    /// Creates an estimate record with an explicit age (saturated to the packed field's
    /// 24-bit range).
    ///
    /// # Panics
    ///
    /// Panics if the origin identifier does not fit the packed layout's 40 id bits.
    pub fn with_age(origin: NodeId, ratio: f64, age: u32) -> Self {
        let id = origin.as_u64();
        assert!(
            id <= ORIGIN_MASK,
            "origin id {id} exceeds the estimate record's 40-bit address space"
        );
        EstimateRecord {
            packed: id | ((age.min(RECORD_AGE_MAX) as u64) << ORIGIN_BITS),
            ratio,
        }
    }

    /// The public node that produced the estimate.
    pub const fn origin(self) -> NodeId {
        NodeId::new(self.packed & ORIGIN_MASK)
    }

    /// Rounds elapsed since the estimate was produced.
    pub const fn age(self) -> u32 {
        (self.packed >> ORIGIN_BITS) as u32
    }
}

#[derive(Clone, Copy, Debug)]
struct CachedEstimate {
    ratio: f64,
    age: u32,
}

/// The per-node state of the distributed ratio-estimation algorithm.
///
/// # Examples
///
/// ```
/// use croupier::RatioEstimator;
/// use croupier_simulator::{NatClass, NodeId};
///
/// // A croupier that receives one public and four private requests per round converges to
/// // a local estimate of 0.2.
/// let mut est = RatioEstimator::new(NatClass::Public, 25, 50);
/// for _ in 0..30 {
///     est.record_request(NatClass::Public);
///     for _ in 0..4 {
///         est.record_request(NatClass::Private);
///     }
///     est.advance_round();
/// }
/// assert!((est.local_estimate().unwrap() - 0.2).abs() < 1e-9);
/// ```
#[derive(Clone, Debug)]
pub struct RatioEstimator {
    class: NatClass,
    alpha: usize,
    gamma: u32,
    current_public_hits: u32,
    current_private_hits: u32,
    history: VecDeque<(u32, u32)>,
    local_estimate: Option<f64>,
    // Sorted by origin id. Ascending-id iteration keeps whole simulation runs bit-for-bit
    // reproducible for a fixed seed (this replaced a BTreeMap with the same iteration
    // order); a flat sorted vector additionally makes the per-round cache maintenance
    // allocation-free once its capacity has warmed up, where the tree allocated and freed
    // a node per insert/expiry.
    neighbour_estimates: Vec<(NodeId, CachedEstimate)>,
    // Recycled staging buffer for `share`, so assembling the piggy-backed payload does not
    // allocate in steady state.
    share_scratch: Vec<EstimateRecord>,
}

impl RatioEstimator {
    /// Creates an estimator for a node of class `class` with a local history of `alpha`
    /// rounds and a neighbour history of `gamma` rounds.
    ///
    /// # Panics
    ///
    /// Panics if `alpha` is zero.
    pub fn new(class: NatClass, alpha: usize, gamma: u32) -> Self {
        assert!(alpha > 0, "alpha (local history) must be positive");
        RatioEstimator {
            class,
            alpha,
            gamma,
            current_public_hits: 0,
            current_private_hits: 0,
            history: VecDeque::with_capacity(alpha + 1),
            local_estimate: None,
            neighbour_estimates: Vec::new(),
            share_scratch: Vec::new(),
        }
    }

    /// The node class this estimator was created for.
    pub fn class(&self) -> NatClass {
        self.class
    }

    /// Records the receipt of one shuffle request from a sender of class `sender`.
    ///
    /// Only croupiers (public nodes) receive shuffle requests; calling this on a private
    /// node's estimator is harmless but has no effect on its estimate, which never uses a
    /// local component (equation 9).
    pub fn record_request(&mut self, sender: NatClass) {
        match sender {
            NatClass::Public => self.current_public_hits += 1,
            NatClass::Private => self.current_private_hits += 1,
        }
    }

    /// Advances the estimator by one gossip round, following the order of Algorithm 2:
    /// cached neighbour estimates age (and expire after `γ` rounds), the local estimate is
    /// recomputed from the hit history of the last `α` rounds, and the current round's hit
    /// counters are pushed into the history.
    pub fn advance_round(&mut self) {
        // Age and expire neighbour estimates (in place; the sorted order is unaffected).
        for (_, cached) in self.neighbour_estimates.iter_mut() {
            cached.age = cached.age.saturating_add(1);
        }
        let gamma = self.gamma;
        self.neighbour_estimates
            .retain(|(_, cached)| cached.age <= gamma);

        // Croupiers recompute their local estimate from the hit history (equation 6,
        // evaluated before the current round's counters are appended, as in Algorithm 2).
        if self.class.is_public() {
            if let Some(ratio) = self.hits_ratio() {
                self.local_estimate = Some(ratio);
            }
        }

        // Append the current round's counters and trim the window to α rounds.
        self.history
            .push_back((self.current_public_hits, self.current_private_hits));
        while self.history.len() > self.alpha {
            self.history.pop_front();
        }
        self.current_public_hits = 0;
        self.current_private_hits = 0;
    }

    /// The ratio of public hits to total hits over the current history window (the paper's
    /// `CalcHitsRatio`), or `None` if no request has been received in the window.
    pub fn hits_ratio(&self) -> Option<f64> {
        let (public, private) = self.history.iter().fold((0u64, 0u64), |(p, v), (cu, cv)| {
            (p + *cu as u64, v + *cv as u64)
        });
        let total = public + private;
        if total == 0 {
            None
        } else {
            Some(public as f64 / total as f64)
        }
    }

    /// The node's own (local) estimate `Eᵢ`, if it has received any requests yet. Always
    /// `None` for private nodes.
    pub fn local_estimate(&self) -> Option<f64> {
        self.local_estimate
    }

    /// Ingests ratio estimates received from a peer, keeping for every origin the freshest
    /// record and discarding records older than `γ` or produced by `self_node`.
    pub fn ingest(&mut self, records: &[EstimateRecord], self_node: NodeId) {
        for record in records {
            if record.origin() == self_node || record.age() > self.gamma {
                continue;
            }
            if !record.ratio.is_finite() || !(0.0..=1.0).contains(&record.ratio) {
                continue;
            }
            let fresh = CachedEstimate {
                ratio: record.ratio,
                age: record.age(),
            };
            match self
                .neighbour_estimates
                .binary_search_by_key(&record.origin(), |(origin, _)| *origin)
            {
                Ok(i) => {
                    if self.neighbour_estimates[i].1.age > record.age() {
                        self.neighbour_estimates[i].1 = fresh;
                    }
                }
                Err(i) => self.neighbour_estimates.insert(i, (record.origin(), fresh)),
            }
        }
    }

    /// Returns up to `count` cached neighbour estimates chosen uniformly at random, plus the
    /// node's own estimate (fresh, age zero) if it has one — the payload piggy-backed on a
    /// shuffle message.
    ///
    /// Staged through a recycled scratch buffer and returned inline, so assembling the
    /// payload allocates nothing in steady state. The full cache is shuffled before
    /// truncation (not a partial draw) deliberately: it consumes the node's random stream
    /// exactly as the original `Vec`-returning implementation did, keeping every seeded
    /// run bit-identical across the change.
    pub fn share(&mut self, count: usize, self_node: NodeId, rng: &mut SmallRng) -> EstimateBatch {
        self.share_scratch.clear();
        self.share_scratch.extend(
            self.neighbour_estimates.iter().map(|(origin, cached)| {
                EstimateRecord::with_age(*origin, cached.ratio, cached.age)
            }),
        );
        self.share_scratch.shuffle(rng);
        self.share_scratch.truncate(count);
        let mut records: EstimateBatch = self.share_scratch.iter().copied().collect();
        if let Some(own) = self.local_estimate {
            if self.class.is_public() {
                records.push(EstimateRecord::new(self_node, own));
            }
        }
        records
    }

    /// The node-level estimate of ω (equations 8 and 9): the average of the cached
    /// neighbour estimates, including the node's own local estimate if it is a croupier.
    ///
    /// Returns `None` while the node has not collected any estimate yet.
    pub fn estimate(&self) -> Option<f64> {
        let mut sum: f64 = self.neighbour_estimates.iter().map(|(_, c)| c.ratio).sum();
        let mut count = self.neighbour_estimates.len();
        if self.class.is_public() {
            if let Some(own) = self.local_estimate {
                sum += own;
                count += 1;
            }
        }
        if count == 0 {
            None
        } else {
            Some(sum / count as f64)
        }
    }

    /// Number of cached neighbour estimates.
    pub fn cached_count(&self) -> usize {
        self.neighbour_estimates.len()
    }

    /// The α (local history) parameter.
    pub fn alpha(&self) -> usize {
        self.alpha
    }

    /// The γ (neighbour history) parameter.
    pub fn gamma(&self) -> u32 {
        self.gamma
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(9)
    }

    #[test]
    fn local_estimate_tracks_hit_ratio() {
        let mut est = RatioEstimator::new(NatClass::Public, 10, 20);
        for _ in 0..5 {
            est.record_request(NatClass::Public);
            est.record_request(NatClass::Private);
            est.record_request(NatClass::Private);
            est.record_request(NatClass::Private);
            est.advance_round();
        }
        assert!((est.local_estimate().unwrap() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn local_estimate_uses_only_the_alpha_window() {
        let mut est = RatioEstimator::new(NatClass::Public, 3, 20);
        // Three rounds of only-public requests ...
        for _ in 0..3 {
            est.record_request(NatClass::Public);
            est.advance_round();
        }
        // ... then four rounds of only-private requests push the public rounds out of the
        // window entirely.
        for _ in 0..4 {
            est.record_request(NatClass::Private);
            est.advance_round();
        }
        assert!((est.local_estimate().unwrap() - 0.0).abs() < 1e-9);
        assert_eq!(est.hits_ratio(), Some(0.0));
    }

    #[test]
    fn local_estimate_survives_quiet_rounds() {
        let mut est = RatioEstimator::new(NatClass::Public, 2, 20);
        est.record_request(NatClass::Public);
        est.advance_round();
        // Rounds with no requests at all: the previous estimate is retained rather than
        // replaced by an undefined 0/0 ratio.
        est.advance_round();
        est.advance_round();
        assert_eq!(est.local_estimate(), Some(1.0));
    }

    #[test]
    fn private_nodes_never_have_a_local_estimate() {
        let mut est = RatioEstimator::new(NatClass::Private, 10, 20);
        est.record_request(NatClass::Public);
        est.advance_round();
        assert_eq!(est.local_estimate(), None);
    }

    #[test]
    fn estimate_averages_neighbours_and_self() {
        let mut est = RatioEstimator::new(NatClass::Public, 5, 20);
        // Local estimate becomes 0.5.
        est.record_request(NatClass::Public);
        est.record_request(NatClass::Private);
        est.advance_round();
        est.advance_round();
        est.ingest(
            &[
                EstimateRecord::new(NodeId::new(1), 0.2),
                EstimateRecord::new(NodeId::new(2), 0.3),
            ],
            NodeId::new(0),
        );
        // Equation 8: (0.2 + 0.3 + 0.5) / 3.
        let e = est.estimate().unwrap();
        assert!((e - 1.0 / 3.0).abs() < 1e-9, "estimate was {e}");
    }

    #[test]
    fn private_estimate_averages_only_neighbours() {
        let mut est = RatioEstimator::new(NatClass::Private, 5, 20);
        assert_eq!(est.estimate(), None);
        est.ingest(
            &[
                EstimateRecord::new(NodeId::new(1), 0.2),
                EstimateRecord::new(NodeId::new(2), 0.4),
            ],
            NodeId::new(0),
        );
        assert!((est.estimate().unwrap() - 0.3).abs() < 1e-9);
    }

    #[test]
    fn ingest_keeps_the_freshest_record_per_origin() {
        let mut est = RatioEstimator::new(NatClass::Private, 5, 20);
        est.ingest(
            &[EstimateRecord::with_age(NodeId::new(1), 0.9, 10)],
            NodeId::new(0),
        );
        est.ingest(
            &[EstimateRecord::with_age(NodeId::new(1), 0.1, 2)],
            NodeId::new(0),
        );
        assert!((est.estimate().unwrap() - 0.1).abs() < 1e-9);
        // An older record does not overwrite the fresher one.
        est.ingest(
            &[EstimateRecord::with_age(NodeId::new(1), 0.9, 15)],
            NodeId::new(0),
        );
        assert!((est.estimate().unwrap() - 0.1).abs() < 1e-9);
    }

    #[test]
    fn ingest_rejects_own_stale_and_invalid_records() {
        let mut est = RatioEstimator::new(NatClass::Private, 5, 10);
        est.ingest(
            &[
                EstimateRecord::new(NodeId::new(0), 0.5),          // self
                EstimateRecord::with_age(NodeId::new(1), 0.5, 11), // too old
                EstimateRecord::new(NodeId::new(2), f64::NAN),     // invalid
                EstimateRecord::new(NodeId::new(3), 1.5),          // out of range
            ],
            NodeId::new(0),
        );
        assert_eq!(est.cached_count(), 0);
        assert_eq!(est.estimate(), None);
    }

    #[test]
    fn neighbour_estimates_expire_after_gamma_rounds() {
        let mut est = RatioEstimator::new(NatClass::Private, 5, 3);
        est.ingest(&[EstimateRecord::new(NodeId::new(1), 0.4)], NodeId::new(0));
        for _ in 0..3 {
            est.advance_round();
        }
        assert_eq!(est.cached_count(), 1);
        est.advance_round();
        assert_eq!(est.cached_count(), 0);
        assert_eq!(est.estimate(), None);
    }

    #[test]
    fn share_bounds_the_payload_and_appends_own_estimate() {
        let mut est = RatioEstimator::new(NatClass::Public, 5, 50);
        for i in 1..=20u64 {
            est.ingest(&[EstimateRecord::new(NodeId::new(i), 0.5)], NodeId::new(0));
        }
        est.record_request(NatClass::Public);
        est.advance_round();
        // The local estimate is computed from the history *before* the current round's
        // counters are appended (Algorithm 2), so a second round is needed for the first
        // round's hit to become visible.
        est.advance_round();
        let mut r = rng();
        let shared = est.share(10, NodeId::new(0), &mut r);
        assert_eq!(shared.len(), 11, "10 cached + the node's own estimate");
        assert!(shared
            .iter()
            .any(|rec| rec.origin() == NodeId::new(0) && rec.age() == 0));
    }

    #[test]
    fn share_without_local_estimate_is_only_cached_records() {
        let mut est = RatioEstimator::new(NatClass::Private, 5, 50);
        let mut r = rng();
        assert!(est.share(10, NodeId::new(0), &mut r).is_empty());
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn zero_alpha_is_rejected() {
        RatioEstimator::new(NatClass::Public, 0, 10);
    }

    #[test]
    fn accessors_report_parameters() {
        let est = RatioEstimator::new(NatClass::Public, 25, 50);
        assert_eq!(est.alpha(), 25);
        assert_eq!(est.gamma(), 50);
        assert_eq!(est.class(), NatClass::Public);
    }
}
