//! Protocol configuration.

use serde::{Deserialize, Serialize};

/// Which neighbour a node selects as the target of its next shuffle.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum SelectionPolicy {
    /// Select the *oldest* descriptor (the paper's choice; called *tail* in the peer
    /// sampling literature). Ensures stale descriptors are refreshed or discarded quickly.
    Tail,
    /// Select a descriptor uniformly at random. Kept for ablation experiments.
    Random,
}

/// How received descriptors are merged into a full view.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Serialize, Deserialize)]
pub enum MergePolicy {
    /// Replace the descriptors that were sent to the peer with the descriptors received
    /// from it (the paper's choice; minimises information loss).
    Swapper,
    /// Keep the freshest descriptors among the union of the current view and the received
    /// descriptors. Kept for ablation experiments.
    Healer,
}

/// Configuration of a [`CroupierNode`](crate::CroupierNode).
///
/// The defaults are the values used throughout the paper's evaluation (§VII-A): views of 10
/// entries, shuffle subsets of 5 entries, a local history of α = 25 rounds, a neighbour
/// history of γ = 50 rounds, and at most 10 piggy-backed ratio estimates per message.
///
/// # Examples
///
/// ```
/// use croupier::CroupierConfig;
///
/// let small_windows = CroupierConfig::default()
///     .with_local_history(10)
///     .with_neighbour_history(25);
/// assert_eq!(small_windows.local_history, 10);
/// assert_eq!(small_windows.view_size, 10);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct CroupierConfig {
    /// Capacity of the public view and of the private view (paper: 10).
    pub view_size: usize,
    /// Total number of view descriptors included in a shuffle message (paper: 5). The
    /// budget is split between the public and the private view, the public view receiving
    /// the larger half; the sender's own descriptor is added on top of the budget.
    pub shuffle_size: usize,
    /// α — length, in rounds, of the local shuffle-request-count history a croupier uses to
    /// compute its own ratio estimate (paper default: 25).
    pub local_history: usize,
    /// γ — maximum age, in rounds, of a cached neighbour estimate before it is discarded
    /// (paper default: 50).
    pub neighbour_history: u32,
    /// Maximum number of ratio estimates piggy-backed on one shuffle message (paper: 10).
    pub estimate_share_size: usize,
    /// Number of public nodes requested from the bootstrap server when joining.
    pub bootstrap_size: usize,
    /// Neighbour selection policy (paper: tail).
    pub selection: SelectionPolicy,
    /// View merge policy (paper: swapper).
    pub merge: MergePolicy,
    /// If `true`, a node whose public view becomes empty asks the bootstrap server for new
    /// public nodes in its next round. Enabled by default: a node that joined before any
    /// public node was registered (or whose whole public view died) would otherwise remain
    /// isolated forever, which no deployment would accept. The catastrophic-failure
    /// experiment measures connectivity immediately after the failure, before any
    /// re-bootstrap can take effect, so the resilience results are unaffected.
    pub rebootstrap_on_empty: bool,
}

impl Default for CroupierConfig {
    fn default() -> Self {
        CroupierConfig {
            view_size: 10,
            shuffle_size: 5,
            local_history: 25,
            neighbour_history: 50,
            estimate_share_size: 10,
            bootstrap_size: 10,
            selection: SelectionPolicy::Tail,
            merge: MergePolicy::Swapper,
            rebootstrap_on_empty: true,
        }
    }
}

impl CroupierConfig {
    /// Validates the configuration, panicking on inconsistent values.
    ///
    /// # Panics
    ///
    /// Panics if `view_size` is zero, `shuffle_size` is zero or exceeds `view_size`, or
    /// `local_history` is zero.
    pub fn validate(&self) {
        assert!(self.view_size > 0, "view_size must be positive");
        assert!(
            self.shuffle_size > 0 && self.shuffle_size <= self.view_size,
            "shuffle_size must be in 1..=view_size"
        );
        assert!(
            self.local_history > 0,
            "local_history (alpha) must be positive"
        );
    }

    /// Sets the view capacity.
    pub fn with_view_size(mut self, view_size: usize) -> Self {
        self.view_size = view_size;
        self
    }

    /// Sets the shuffle subset size.
    pub fn with_shuffle_size(mut self, shuffle_size: usize) -> Self {
        self.shuffle_size = shuffle_size;
        self
    }

    /// Sets α, the local history window.
    pub fn with_local_history(mut self, alpha: usize) -> Self {
        self.local_history = alpha;
        self
    }

    /// Sets γ, the neighbour history window.
    pub fn with_neighbour_history(mut self, gamma: u32) -> Self {
        self.neighbour_history = gamma;
        self
    }

    /// Sets the number of estimates piggy-backed per shuffle message.
    pub fn with_estimate_share_size(mut self, count: usize) -> Self {
        self.estimate_share_size = count;
        self
    }

    /// Sets the neighbour selection policy.
    pub fn with_selection(mut self, selection: SelectionPolicy) -> Self {
        self.selection = selection;
        self
    }

    /// Sets the view merge policy.
    pub fn with_merge(mut self, merge: MergePolicy) -> Self {
        self.merge = merge;
        self
    }

    /// Enables or disables re-bootstrapping when the public view runs empty.
    pub fn with_rebootstrap_on_empty(mut self, enabled: bool) -> Self {
        self.rebootstrap_on_empty = enabled;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_paper() {
        let c = CroupierConfig::default();
        assert_eq!(c.view_size, 10);
        assert_eq!(c.shuffle_size, 5);
        assert_eq!(c.local_history, 25);
        assert_eq!(c.neighbour_history, 50);
        assert_eq!(c.estimate_share_size, 10);
        assert_eq!(c.selection, SelectionPolicy::Tail);
        assert_eq!(c.merge, MergePolicy::Swapper);
        assert!(c.rebootstrap_on_empty);
        c.validate();
    }

    #[test]
    fn builder_methods_update_fields() {
        let c = CroupierConfig::default()
            .with_view_size(20)
            .with_shuffle_size(8)
            .with_local_history(100)
            .with_neighbour_history(250)
            .with_estimate_share_size(5)
            .with_selection(SelectionPolicy::Random)
            .with_merge(MergePolicy::Healer)
            .with_rebootstrap_on_empty(false);
        assert_eq!(c.view_size, 20);
        assert_eq!(c.shuffle_size, 8);
        assert_eq!(c.local_history, 100);
        assert_eq!(c.neighbour_history, 250);
        assert_eq!(c.estimate_share_size, 5);
        assert_eq!(c.selection, SelectionPolicy::Random);
        assert_eq!(c.merge, MergePolicy::Healer);
        assert!(!c.rebootstrap_on_empty);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "shuffle_size must be in 1..=view_size")]
    fn validate_rejects_oversized_shuffle() {
        CroupierConfig::default().with_shuffle_size(11).validate();
    }

    #[test]
    #[should_panic(expected = "view_size must be positive")]
    fn validate_rejects_zero_view() {
        CroupierConfig::default().with_view_size(0).validate();
    }
}
