//! The distributed NAT-type identification protocol (§V, Algorithm 1 of the paper).
//!
//! A joining node determines whether it is *public* or *private* without a STUN server,
//! using three messages and the help of already-joined public nodes:
//!
//! 1. If the node's gateway answers UPnP IGD requests, it can map a public port and is
//!    immediately classified **public**.
//! 2. Otherwise the node sends a `MatchingIpTest` to a handful of public nodes obtained
//!    from the bootstrap server. Each recipient learns the source address it observed for
//!    the client and forwards it, inside a `ForwardTest`, to a *different* public node —
//!    one the client has **not** contacted (so no NAT binding towards it can exist).
//! 3. That second node sends a `ForwardResponse` carrying the observed address straight to
//!    the client. If the response arrives and the observed address equals the client's
//!    local address, the client is **public**; if it arrives but the addresses differ, the
//!    client sits behind an endpoint-independent-filtering NAT and is **private**; if it
//!    never arrives (the common case for address/port-dependent filtering or firewalls), a
//!    timeout classifies the client as **private**.

use std::fmt;
use std::sync::Arc;

use croupier_nat::{AddressInfo, Ip};
use croupier_simulator::{Context, NatClass, NodeId, Protocol, SimDuration, TimerKey, WireSize};
use serde::{Deserialize, Serialize};

use crate::messages::UDP_IP_HEADER_BYTES;

/// Timer key used for the client-side identification timeout.
const TIMEOUT_TIMER: TimerKey = TimerKey::new(0x4e41_5449);

/// Configuration of the identification protocol.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NatIdentificationConfig {
    /// Number of public nodes probed in parallel (the protocol concludes on the first
    /// response; more probes improve robustness and latency).
    pub parallel_probes: usize,
    /// How long the client waits for a `ForwardResponse` before concluding it is private.
    pub timeout: SimDuration,
}

impl Default for NatIdentificationConfig {
    fn default() -> Self {
        NatIdentificationConfig {
            parallel_probes: 3,
            timeout: SimDuration::from_secs(5),
        }
    }
}

/// Messages of the identification protocol.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NatIdMessage {
    /// Client → first public node: "what address do you see for me, and please have a node
    /// I did not contact send it back to me". Carries the set of public nodes the client is
    /// probing so the helper avoids choosing one of them as the forwarder.
    MatchingIpTest {
        /// The node under test.
        client: NodeId,
        /// Public nodes the client is probing (must not be chosen as forwarders).
        excluded: Vec<NodeId>,
    },
    /// First public node → second public node: forward the observed client address.
    ForwardTest {
        /// The node under test.
        client: NodeId,
        /// Source address the first public node observed for the client.
        client_observed_ip: Ip,
    },
    /// Second public node → client: the observed address, sent from an endpoint the client
    /// never contacted.
    ForwardResponse {
        /// Source address observed for the client by the first public node.
        observed_ip: Ip,
    },
}

impl WireSize for NatIdMessage {
    fn wire_size(&self) -> usize {
        let payload = match self {
            NatIdMessage::MatchingIpTest { excluded, .. } => 8 + 8 * excluded.len(),
            NatIdMessage::ForwardTest { .. } => 12,
            NatIdMessage::ForwardResponse { .. } => 4,
        };
        UDP_IP_HEADER_BYTES + payload
    }
}

/// Why a node reached its public/private conclusion.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum ClassificationEvidence {
    /// The node's gateway supports UPnP IGD, so it can map a public port.
    UpnpMapping,
    /// A `ForwardResponse` arrived and the observed address matched the local address.
    MatchingAddress,
    /// A `ForwardResponse` arrived but the observed address differed (NATed, but with
    /// endpoint-independent filtering).
    MismatchedAddress,
    /// No `ForwardResponse` arrived before the timeout.
    Timeout,
}

impl fmt::Display for ClassificationEvidence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let text = match self {
            ClassificationEvidence::UpnpMapping => "UPnP port mapping available",
            ClassificationEvidence::MatchingAddress => "observed address matches local address",
            ClassificationEvidence::MismatchedAddress => {
                "observed address differs from local address"
            }
            ClassificationEvidence::Timeout => "no forward response before timeout",
        };
        f.write_str(text)
    }
}

/// A node participating in the NAT-type identification protocol.
///
/// Every node (public helpers and nodes under test alike) runs the same state machine; only
/// nodes created with [`NatIdentificationNode::new_client`] actively probe their own type.
pub struct NatIdentificationNode {
    id: NodeId,
    address_info: Arc<dyn AddressInfo + Send + Sync>,
    config: NatIdentificationConfig,
    is_client: bool,
    conclusion: Option<(NatClass, ClassificationEvidence)>,
    forwards_handled: u64,
}

impl fmt::Debug for NatIdentificationNode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("NatIdentificationNode")
            .field("id", &self.id)
            .field("is_client", &self.is_client)
            .field("conclusion", &self.conclusion)
            .finish()
    }
}

impl NatIdentificationNode {
    /// Creates a node that actively determines its own NAT type at start-up.
    pub fn new_client(
        id: NodeId,
        address_info: Arc<dyn AddressInfo + Send + Sync>,
        config: NatIdentificationConfig,
    ) -> Self {
        NatIdentificationNode {
            id,
            address_info,
            config,
            is_client: true,
            conclusion: None,
            forwards_handled: 0,
        }
    }

    /// Creates a helper node that only answers other nodes' probes (an already-joined
    /// public node).
    pub fn new_helper(id: NodeId, address_info: Arc<dyn AddressInfo + Send + Sync>) -> Self {
        NatIdentificationNode {
            id,
            address_info,
            config: NatIdentificationConfig::default(),
            is_client: false,
            conclusion: None,
            forwards_handled: 0,
        }
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's conclusion about its own NAT type, once reached.
    pub fn conclusion(&self) -> Option<NatClass> {
        self.conclusion.map(|(class, _)| class)
    }

    /// The evidence behind the conclusion.
    pub fn evidence(&self) -> Option<ClassificationEvidence> {
        self.conclusion.map(|(_, evidence)| evidence)
    }

    /// Returns `true` once the node has classified itself.
    pub fn is_concluded(&self) -> bool {
        self.conclusion.is_some()
    }

    /// Number of `MatchingIpTest`/`ForwardTest` messages this node has serviced for others.
    pub fn forwards_handled(&self) -> u64 {
        self.forwards_handled
    }

    fn conclude(&mut self, class: NatClass, evidence: ClassificationEvidence) {
        if self.conclusion.is_none() {
            self.conclusion = Some((class, evidence));
        }
    }
}

impl Protocol for NatIdentificationNode {
    type Message = NatIdMessage;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
        if !self.is_client {
            return;
        }
        // UPnP IGD short-circuit (Algorithm 1, lines 4–5).
        if self.address_info.supports_upnp(self.id) {
            self.conclude(NatClass::Public, ClassificationEvidence::UpnpMapping);
            return;
        }
        let probes = ctx.bootstrap_sample(self.config.parallel_probes);
        for node in &probes {
            ctx.send(
                *node,
                NatIdMessage::MatchingIpTest {
                    client: self.id,
                    excluded: probes.clone(),
                },
            );
        }
        ctx.set_timer(self.config.timeout, TIMEOUT_TIMER);
    }

    fn on_round(&mut self, _ctx: &mut Context<'_, Self::Message>) {
        // The identification protocol is not round-based; nothing to do.
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    ) {
        match msg {
            NatIdMessage::MatchingIpTest { client, excluded } => {
                self.forwards_handled += 1;
                // A real deployment reads the source address off the UDP packet; the
                // emulation asks the address oracle for the same observable fact.
                let Some(observed) = self.address_info.observed_ip(client) else {
                    return;
                };
                // Pick a forwarder the client has not contacted: not the client, not one of
                // its probed nodes, not ourselves.
                let candidates = ctx.bootstrap_sample(excluded.len() + 4);
                let forwarder = candidates
                    .into_iter()
                    .find(|n| *n != client && *n != self.id && !excluded.contains(n));
                if let Some(forwarder) = forwarder {
                    ctx.send(
                        forwarder,
                        NatIdMessage::ForwardTest {
                            client,
                            client_observed_ip: observed,
                        },
                    );
                }
            }
            NatIdMessage::ForwardTest {
                client,
                client_observed_ip,
            } => {
                self.forwards_handled += 1;
                ctx.send(
                    client,
                    NatIdMessage::ForwardResponse {
                        observed_ip: client_observed_ip,
                    },
                );
            }
            NatIdMessage::ForwardResponse { observed_ip } => {
                let _ = from;
                if !self.is_client || self.is_concluded() {
                    return;
                }
                match self.address_info.local_ip(self.id) {
                    Some(local) if local == observed_ip => {
                        self.conclude(NatClass::Public, ClassificationEvidence::MatchingAddress)
                    }
                    _ => {
                        self.conclude(NatClass::Private, ClassificationEvidence::MismatchedAddress)
                    }
                }
            }
        }
    }

    fn on_timer(&mut self, key: TimerKey, _ctx: &mut Context<'_, Self::Message>) {
        if key == TIMEOUT_TIMER && self.is_client && !self.is_concluded() {
            self.conclude(NatClass::Private, ClassificationEvidence::Timeout);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croupier_nat::{FilteringPolicy, NatTopology, NatTopologyBuilder};
    use croupier_simulator::{Simulation, SimulationConfig};

    /// Builds a world with `n_helpers` established public nodes plus one client with the
    /// given profile, runs the protocol to completion and returns the client's conclusion.
    fn classify(profile: &str) -> (Option<NatClass>, Option<ClassificationEvidence>) {
        let topology: NatTopology = NatTopologyBuilder::new(11)
            .default_filtering(FilteringPolicy::AddressAndPortDependent)
            .build();
        let info: Arc<dyn AddressInfo + Send + Sync> = Arc::new(topology.clone());
        let mut sim = Simulation::new(SimulationConfig::default().with_seed(13));
        sim.set_delivery_filter(topology.clone());

        let n_helpers = 6u64;
        for i in 0..n_helpers {
            let id = NodeId::new(i);
            topology.add_public_node(id);
            sim.register_public(id);
            sim.add_node(id, NatIdentificationNode::new_helper(id, Arc::clone(&info)));
        }

        let client = NodeId::new(100);
        match profile {
            "public" => topology.add_public_node(client),
            "upnp" => topology.add_upnp_node(client),
            "private-ei" => topology.add_private_node_with(
                client,
                croupier_nat::NatGatewayConfig::with_filtering(
                    FilteringPolicy::EndpointIndependent,
                ),
            ),
            "private-apd" => topology.add_private_node_with(
                client,
                croupier_nat::NatGatewayConfig::with_filtering(
                    FilteringPolicy::AddressAndPortDependent,
                ),
            ),
            other => panic!("unknown profile {other}"),
        }
        sim.add_node(
            client,
            NatIdentificationNode::new_client(
                client,
                Arc::clone(&info),
                NatIdentificationConfig::default(),
            ),
        );
        sim.run_for(SimDuration::from_secs(10));
        let node = sim.node(client).unwrap();
        (node.conclusion(), node.evidence())
    }

    #[test]
    fn public_nodes_are_classified_public_via_matching_addresses() {
        let (class, evidence) = classify("public");
        assert_eq!(class, Some(NatClass::Public));
        assert_eq!(evidence, Some(ClassificationEvidence::MatchingAddress));
    }

    #[test]
    fn upnp_nodes_are_classified_public_without_any_messages() {
        let (class, evidence) = classify("upnp");
        assert_eq!(class, Some(NatClass::Public));
        assert_eq!(evidence, Some(ClassificationEvidence::UpnpMapping));
    }

    #[test]
    fn endpoint_independent_nats_are_detected_by_address_mismatch() {
        let (class, evidence) = classify("private-ei");
        assert_eq!(class, Some(NatClass::Private));
        assert_eq!(evidence, Some(ClassificationEvidence::MismatchedAddress));
    }

    #[test]
    fn port_dependent_nats_are_detected_by_timeout() {
        let (class, evidence) = classify("private-apd");
        assert_eq!(class, Some(NatClass::Private));
        assert_eq!(evidence, Some(ClassificationEvidence::Timeout));
    }

    #[test]
    fn protocol_costs_three_messages_per_successful_run() {
        // One MatchingIpTest per probe, but only the full chain of the fastest probe counts:
        // MatchingIpTest + ForwardTest + ForwardResponse = 3 messages on the decisive path.
        let topology = NatTopologyBuilder::new(3).build();
        let info: Arc<dyn AddressInfo + Send + Sync> = Arc::new(topology.clone());
        let mut sim = Simulation::new(SimulationConfig::default().with_seed(17));
        sim.set_delivery_filter(topology.clone());
        for i in 0..4u64 {
            let id = NodeId::new(i);
            topology.add_public_node(id);
            sim.register_public(id);
            sim.add_node(id, NatIdentificationNode::new_helper(id, Arc::clone(&info)));
        }
        let client = NodeId::new(50);
        topology.add_public_node(client);
        sim.add_node(
            client,
            NatIdentificationNode::new_client(
                client,
                Arc::clone(&info),
                NatIdentificationConfig {
                    parallel_probes: 1,
                    timeout: SimDuration::from_secs(5),
                },
            ),
        );
        sim.run_for(SimDuration::from_secs(10));
        assert_eq!(
            sim.node(client).unwrap().conclusion(),
            Some(NatClass::Public)
        );
        // With a single probe the whole run is exactly three messages.
        assert_eq!(sim.network_stats().delivered, 3);
    }

    #[test]
    fn client_without_helpers_times_out_to_private() {
        let topology = NatTopologyBuilder::new(5).build();
        let info: Arc<dyn AddressInfo + Send + Sync> = Arc::new(topology.clone());
        let mut sim = Simulation::new(SimulationConfig::default().with_seed(19));
        sim.set_delivery_filter(topology.clone());
        let client = NodeId::new(0);
        topology.add_public_node(client);
        sim.add_node(
            client,
            NatIdentificationNode::new_client(
                client,
                Arc::clone(&info),
                NatIdentificationConfig::default(),
            ),
        );
        sim.run_for(SimDuration::from_secs(10));
        let node = sim.node(client).unwrap();
        assert_eq!(node.conclusion(), Some(NatClass::Private));
        assert_eq!(node.evidence(), Some(ClassificationEvidence::Timeout));
    }

    #[test]
    fn wire_sizes_are_small() {
        let m = NatIdMessage::MatchingIpTest {
            client: NodeId::new(1),
            excluded: vec![NodeId::new(2), NodeId::new(3)],
        };
        assert!(m.wire_size() < 100);
        assert!(
            NatIdMessage::ForwardResponse {
                observed_ip: Ip::public(1)
            }
            .wire_size()
                < 50
        );
    }

    #[test]
    fn evidence_displays_human_readable_text() {
        assert!(ClassificationEvidence::UpnpMapping
            .to_string()
            .contains("UPnP"));
        assert!(ClassificationEvidence::Timeout
            .to_string()
            .contains("timeout"));
    }
}
