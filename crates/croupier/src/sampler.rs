//! Uniform random sampling from the dual views (Algorithm 3, `generateRandomSample`).

use croupier_simulator::NodeId;
use rand::rngs::SmallRng;
use rand::Rng;

use crate::view::View;

/// Draws one node sample from the pair of views, following the paper's
/// `generateRandomSample`: with probability equal to the estimated public/private ratio the
/// sample is a uniformly random entry of the public view, otherwise a uniformly random
/// entry of the private view.
///
/// Edge cases (not spelled out in the pseudo-code, resolved conservatively):
///
/// * if no ratio estimate is available yet, the probability defaults to the fraction of
///   public entries among both views (the best locally available proxy);
/// * if the chosen view is empty, the sample falls back to the other view;
/// * if both views are empty, no sample is produced.
///
/// # Examples
///
/// ```
/// use croupier::{sample_from_views, Descriptor, View};
/// use croupier_simulator::{NatClass, NodeId};
/// use rand::SeedableRng;
///
/// let mut public = View::new(2);
/// public.insert(Descriptor::new(NodeId::new(1), NatClass::Public));
/// let private = View::new(2);
/// let mut rng = rand::rngs::SmallRng::seed_from_u64(0);
/// // The private view is empty, so the sample must come from the public view.
/// assert_eq!(
///     sample_from_views(&public, &private, Some(0.0), &mut rng),
///     Some(NodeId::new(1)),
/// );
/// ```
pub fn sample_from_views(
    public_view: &View,
    private_view: &View,
    ratio_estimate: Option<f64>,
    rng: &mut SmallRng,
) -> Option<NodeId> {
    if public_view.is_empty() && private_view.is_empty() {
        return None;
    }
    let probability_public = match ratio_estimate {
        Some(ratio) if ratio.is_finite() => ratio.clamp(0.0, 1.0),
        _ => {
            let total = (public_view.len() + private_view.len()) as f64;
            public_view.len() as f64 / total
        }
    };
    let choose_public = rng.gen_range(0.0..1.0) < probability_public;
    let (first, second) = if choose_public {
        (public_view, private_view)
    } else {
        (private_view, public_view)
    };
    first
        .random(rng)
        .or_else(|| second.random(rng))
        .map(|d| d.node())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Descriptor;
    use croupier_simulator::NatClass;
    use rand::SeedableRng;

    fn rng() -> SmallRng {
        SmallRng::seed_from_u64(21)
    }

    fn views(n_pub: u64, n_priv: u64) -> (View, View) {
        let mut public = View::new(n_pub.max(1) as usize);
        for i in 0..n_pub {
            public.insert(Descriptor::new(NodeId::new(i), NatClass::Public));
        }
        let mut private = View::new(n_priv.max(1) as usize);
        for i in 0..n_priv {
            private.insert(Descriptor::new(NodeId::new(1_000 + i), NatClass::Private));
        }
        (public, private)
    }

    #[test]
    fn empty_views_yield_no_sample() {
        let (public, private) = views(0, 0);
        assert_eq!(
            sample_from_views(&public, &private, Some(0.5), &mut rng()),
            None
        );
    }

    #[test]
    fn ratio_one_always_samples_public() {
        let (public, private) = views(3, 3);
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_from_views(&public, &private, Some(1.0), &mut r).unwrap();
            assert!(s.as_u64() < 1_000);
        }
    }

    #[test]
    fn ratio_zero_always_samples_private() {
        let (public, private) = views(3, 3);
        let mut r = rng();
        for _ in 0..100 {
            let s = sample_from_views(&public, &private, Some(0.0), &mut r).unwrap();
            assert!(s.as_u64() >= 1_000);
        }
    }

    #[test]
    fn sampling_respects_the_estimated_ratio() {
        let (public, private) = views(10, 10);
        let mut r = rng();
        let n = 20_000;
        let mut public_samples = 0;
        for _ in 0..n {
            let s = sample_from_views(&public, &private, Some(0.2), &mut r).unwrap();
            if s.as_u64() < 1_000 {
                public_samples += 1;
            }
        }
        let fraction = public_samples as f64 / n as f64;
        assert!(
            (fraction - 0.2).abs() < 0.02,
            "public sample fraction {fraction} should be close to the ratio 0.2"
        );
    }

    #[test]
    fn falls_back_to_other_view_when_chosen_view_is_empty() {
        let (public, private) = views(0, 3);
        let mut r = rng();
        // Ratio says "public" but the public view is empty: sample private instead.
        let s = sample_from_views(&public, &private, Some(1.0), &mut r).unwrap();
        assert!(s.as_u64() >= 1_000);
    }

    #[test]
    fn missing_estimate_uses_view_proportions() {
        let (public, private) = views(5, 15);
        let mut r = rng();
        let n = 20_000;
        let mut public_samples = 0;
        for _ in 0..n {
            let s = sample_from_views(&public, &private, None, &mut r).unwrap();
            if s.as_u64() < 1_000 {
                public_samples += 1;
            }
        }
        let fraction = public_samples as f64 / n as f64;
        assert!((fraction - 0.25).abs() < 0.02, "got {fraction}");
    }

    #[test]
    fn invalid_estimates_are_clamped_or_ignored() {
        let (public, private) = views(2, 2);
        let mut r = rng();
        assert!(sample_from_views(&public, &private, Some(f64::NAN), &mut r).is_some());
        assert!(sample_from_views(&public, &private, Some(7.0), &mut r).is_some());
        assert!(sample_from_views(&public, &private, Some(-3.0), &mut r).is_some());
    }
}
