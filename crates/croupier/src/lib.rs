//! # croupier
//!
//! A reproduction of **Croupier**, the NAT-aware gossip peer-sampling service of
//! *Shuffling with a Croupier: NAT-Aware Peer Sampling* (Dowling & Payberah, ICDCS 2012).
//!
//! Croupier provides every node of a peer-to-peer system with a continuous stream of
//! uniformly random node samples even when most nodes sit behind NATs — **without relaying
//! and without hole-punching**. Its three ideas, all implemented here:
//!
//! 1. **Dual views** ([`View`]): each node keeps a bounded *public view* and a bounded
//!    *private view* instead of one mixed view, preventing public nodes from becoming
//!    over-represented.
//! 2. **Croupier shuffling** ([`CroupierNode`]): every node — public or private — sends one
//!    shuffle request per round to the *oldest* descriptor in its public view (tail
//!    selection). Only public nodes ("croupiers") answer, swapping random subsets of both
//!    views (push-pull + swapper policies).
//! 3. **Public/private ratio estimation** ([`RatioEstimator`]): croupiers estimate the
//!    global ratio ω from the relative rate of shuffle requests they receive from public vs
//!    private senders over a sliding window of `α` rounds, and piggy-back their estimates on
//!    shuffle messages; every node averages the estimates it has cached over a `γ`-round
//!    window. Samples are then drawn from the public view with probability ω̂ and from the
//!    private view otherwise ([`sampler`]).
//!
//! The crate also implements the paper's distributed **NAT-type identification protocol**
//! (§V) in [`nat_identification`], which classifies a node as public or private with three
//! messages and no STUN server.
//!
//! The protocol logic is transport-agnostic: [`CroupierNode`] implements the
//! [`Protocol`](croupier_simulator::Protocol) trait of `croupier-simulator` and talks to
//! the outside world exclusively through the
//! [`Context`](croupier_simulator::Context) facade over the
//! [`Transport`](croupier_simulator::Transport) seam — it never names an engine type. The
//! deterministic discrete-event engine drives it in all tests, examples and benchmarks,
//! exactly as the original implementation was driven by the Kompics simulator; any other
//! [`Transport`](croupier_simulator::Transport) implementation (the sharded engine, or a
//! real socket layer) can host the identical protocol code.
//!
//! ## Quickstart
//!
//! ```
//! use croupier::{CroupierConfig, CroupierNode};
//! use croupier_nat::NatTopologyBuilder;
//! use croupier_simulator::{NatClass, NodeId, PssNode, Simulation, SimulationConfig};
//!
//! let config = CroupierConfig::default();
//! let topology = NatTopologyBuilder::new(1).build();
//! let mut sim = Simulation::new(SimulationConfig::default().with_seed(1));
//! sim.set_delivery_filter(topology.clone());
//!
//! // 5 public nodes, 20 private nodes.
//! for i in 0..25u64 {
//!     let id = NodeId::new(i);
//!     let class = if i < 5 { NatClass::Public } else { NatClass::Private };
//!     topology.add_node(id, class);
//!     if class.is_public() {
//!         sim.register_public(id);
//!     }
//!     sim.add_node(id, CroupierNode::new(id, class, config.clone()));
//! }
//!
//! sim.run_for_rounds(60);
//!
//! // Every node now has an estimate of the public/private ratio close to 0.2 ...
//! let est = sim.node(NodeId::new(20)).unwrap().ratio_estimate().unwrap();
//! assert!((est - 0.2).abs() < 0.1);
//! // ... and can draw peer samples.
//! assert!(sim.sample_from(NodeId::new(20)).is_some());
//! ```

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod descriptor;
pub mod estimator;
pub mod messages;
pub mod nat_identification;
pub mod protocol;
pub mod sampler;
pub mod view;

pub use config::{CroupierConfig, MergePolicy, SelectionPolicy};
pub use descriptor::{
    Descriptor, DescriptorBatch, AGE_MAX, DESCRIPTOR_INLINE_CAPACITY, DESCRIPTOR_WIRE_BYTES,
};
pub use estimator::{
    EstimateBatch, EstimateRecord, RatioEstimator, ESTIMATE_INLINE_CAPACITY, ESTIMATE_WIRE_BYTES,
};
pub use messages::{CroupierMessage, ShufflePayload, UDP_IP_HEADER_BYTES};
pub use nat_identification::{NatIdMessage, NatIdentificationConfig, NatIdentificationNode};
pub use protocol::CroupierNode;
pub use sampler::sample_from_views;
pub use view::View;
