//! Croupier's wire messages and their size accounting.

use croupier_simulator::{NatClass, WireSize};
use serde::{Deserialize, Serialize};

use crate::descriptor::{DescriptorBatch, DESCRIPTOR_WIRE_BYTES};
use crate::estimator::{EstimateBatch, ESTIMATE_WIRE_BYTES};

/// Bytes charged per message for UDP and IPv4 headers (8 + 20).
pub const UDP_IP_HEADER_BYTES: usize = 28;

/// Bytes of fixed protocol framing per shuffle message (message type, sender class, vector
/// lengths).
const SHUFFLE_FRAMING_BYTES: usize = 6;

/// The state exchanged in a shuffle request or response: bounded random subsets of the
/// sender's public and private views plus a bounded set of piggy-backed ratio estimates.
///
/// All three lists are [`InlineVec`](croupier_simulator::InlineVec)s sized to the paper's
/// view-subset bounds, so filling, reading and clearing a default-config payload touches
/// no heap memory. The payload itself travels **boxed** inside [`CroupierMessage`]: the
/// inline lists make the struct ~380 bytes even with the bit-packed 8-byte
/// [`Descriptor`](crate::Descriptor)s and 16-byte
/// [`EstimateRecord`](crate::EstimateRecord)s (it was ~600 before packing), and shipping
/// that by value through the
/// engines' queues, outboxes and barrier sorts measurably dominated 100k-node rounds
/// (every move is a full-width memcpy). Boxing shrinks the on-queue message to two words;
/// the box itself is recycled through [`CroupierNode`](crate::CroupierNode)'s payload
/// pool — a croupier answers a request by rewriting the request's own box — so the
/// steady-state message plane still performs zero allocations.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct ShufflePayload {
    /// Connectivity class of the sender (drives the receiver's hit counters).
    pub sender_class: NatClass,
    /// Subset of the sender's public view (plus the sender's own descriptor on requests
    /// from public nodes).
    pub public_descriptors: DescriptorBatch,
    /// Subset of the sender's private view (plus the sender's own descriptor on requests
    /// from private nodes).
    pub private_descriptors: DescriptorBatch,
    /// Piggy-backed ratio estimates (the sender's own estimate, if any, is included here
    /// with age zero).
    pub estimates: EstimateBatch,
}

impl ShufflePayload {
    /// Total number of descriptors carried.
    pub fn descriptor_count(&self) -> usize {
        self.public_descriptors.len() + self.private_descriptors.len()
    }

    /// Payload bytes excluding transport headers.
    pub fn payload_bytes(&self) -> usize {
        SHUFFLE_FRAMING_BYTES
            + self.descriptor_count() * DESCRIPTOR_WIRE_BYTES
            + self.estimates.len() * ESTIMATE_WIRE_BYTES
    }
}

/// The two message types of the Croupier protocol (Algorithm 2).
///
/// The payload is boxed so the enum stays two words wide on the event-plane hot paths;
/// see [`ShufflePayload`] for the pooling discipline that keeps the box allocation-free
/// in steady state.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CroupierMessage {
    /// A shuffle request, sent by any node to a croupier (public node).
    ShuffleRequest(Box<ShufflePayload>),
    /// A shuffle response, sent by a croupier back to the requester.
    ShuffleResponse(Box<ShufflePayload>),
}

impl CroupierMessage {
    /// The payload carried by either message type.
    pub fn payload(&self) -> &ShufflePayload {
        match self {
            CroupierMessage::ShuffleRequest(p) | CroupierMessage::ShuffleResponse(p) => p,
        }
    }

    /// Returns `true` for shuffle requests.
    pub fn is_request(&self) -> bool {
        matches!(self, CroupierMessage::ShuffleRequest(_))
    }
}

impl WireSize for CroupierMessage {
    fn wire_size(&self) -> usize {
        UDP_IP_HEADER_BYTES + self.payload().payload_bytes()
    }

    fn fault_mutate(&mut self, rng: &mut rand::rngs::SmallRng) {
        use crate::descriptor::Descriptor;
        use croupier_simulator::NodeId;
        use rand::Rng;
        let payload = match self {
            CroupierMessage::ShuffleRequest(p) | CroupierMessage::ShuffleResponse(p) => p.as_mut(),
        };
        match rng.gen_range(0..4u8) {
            // A truncated datagram decodes to shorter descriptor lists.
            0 => {
                let keep = rng.gen_range(0..=payload.public_descriptors.len());
                payload.public_descriptors.truncate(keep);
            }
            1 => {
                let keep = rng.gen_range(0..=payload.private_descriptors.len());
                payload.private_descriptors.truncate(keep);
                payload.estimates.clear();
            }
            // Bit flips scramble a descriptor into a bogus identity, class and age.
            2 => {
                let descriptors = payload.public_descriptors.as_mut_slice();
                if !descriptors.is_empty() {
                    let idx = rng.gen_range(0..descriptors.len());
                    let class = if rng.gen_bool(0.5) {
                        NatClass::Public
                    } else {
                        NatClass::Private
                    };
                    descriptors[idx] = Descriptor::with_age(
                        NodeId::new(rng.gen_range(0..1 << 20)),
                        class,
                        rng.gen_range(0..1 << 16),
                    );
                }
            }
            // A flipped class bit mis-states the sender's connectivity.
            _ => {
                payload.sender_class = match payload.sender_class {
                    NatClass::Public => NatClass::Private,
                    NatClass::Private => NatClass::Public,
                };
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::descriptor::Descriptor;
    use crate::estimator::EstimateRecord;
    use croupier_simulator::NodeId;

    fn payload(n_pub: usize, n_priv: usize, n_est: usize) -> ShufflePayload {
        ShufflePayload {
            sender_class: NatClass::Public,
            public_descriptors: (0..n_pub as u64)
                .map(|i| Descriptor::new(NodeId::new(i), NatClass::Public))
                .collect(),
            private_descriptors: (0..n_priv as u64)
                .map(|i| Descriptor::new(NodeId::new(100 + i), NatClass::Private))
                .collect(),
            estimates: (0..n_est as u64)
                .map(|i| EstimateRecord::new(NodeId::new(200 + i), 0.2))
                .collect(),
        }
    }

    #[test]
    fn wire_size_matches_the_papers_accounting() {
        // 10 estimates at 5 bytes each add exactly 50 bytes of estimation overhead per
        // message, as stated in §VI of the paper.
        let with = CroupierMessage::ShuffleRequest(Box::new(payload(5, 5, 10)));
        let without = CroupierMessage::ShuffleRequest(Box::new(payload(5, 5, 0)));
        assert_eq!(with.wire_size() - without.wire_size(), 50);
    }

    #[test]
    fn wire_size_scales_with_descriptors() {
        let small = CroupierMessage::ShuffleResponse(Box::new(payload(1, 0, 0)));
        let large = CroupierMessage::ShuffleResponse(Box::new(payload(6, 0, 0)));
        assert_eq!(
            large.wire_size() - small.wire_size(),
            5 * DESCRIPTOR_WIRE_BYTES
        );
        assert!(small.wire_size() > UDP_IP_HEADER_BYTES);
    }

    #[test]
    fn packed_payload_stays_compact() {
        // The bit-packed descriptor (8 bytes) and estimate record (16 bytes) keep the
        // pooled payload under 450 bytes; the pre-packing layout was ~600. A regression
        // here silently doubles the per-message memcpy cost at the 1M-node tier.
        assert_eq!(std::mem::size_of::<crate::Descriptor>(), 8);
        assert_eq!(std::mem::size_of::<EstimateRecord>(), 16);
        assert!(
            std::mem::size_of::<ShufflePayload>() <= 450,
            "ShufflePayload grew to {} bytes",
            std::mem::size_of::<ShufflePayload>()
        );
    }

    #[test]
    fn payload_accessors() {
        let msg = CroupierMessage::ShuffleRequest(Box::new(payload(2, 3, 4)));
        assert!(msg.is_request());
        assert_eq!(msg.payload().descriptor_count(), 5);
        assert_eq!(msg.payload().estimates.len(), 4);
        let resp = CroupierMessage::ShuffleResponse(Box::new(payload(0, 0, 0)));
        assert!(!resp.is_request());
    }
}
