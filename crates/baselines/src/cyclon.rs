//! Cyclon: the classic single-view gossip peer-sampling service (Voulgaris et al., 2005).
//!
//! Cyclon is the paper's baseline for "true" randomness: on a network without NATs its
//! in-degree distribution, path length and clustering coefficient are those of a random
//! graph. It is NAT-oblivious — on networks with private nodes its views fill with
//! unreachable descriptors and the overlay partitions, which is exactly the failure mode
//! Croupier is designed to avoid.
//!
//! Like every protocol in the workspace, Cyclon interacts with its host only through the
//! [`Context`] facade over the [`Transport`](croupier_simulator::Transport) seam; it has
//! no dependency on either engine type.

use croupier::{Descriptor, DescriptorBatch, View, DESCRIPTOR_WIRE_BYTES, UDP_IP_HEADER_BYTES};
use croupier_simulator::{
    Context, NatClass, NodeId, Protocol, PssNode, RetryPolicy, TimerKey, WireSize,
};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

use crate::config::BaselineConfig;

/// Cyclon's shuffle messages: a request carrying a subset of the sender's view (including a
/// fresh descriptor of the sender itself) and the symmetric response.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum CyclonMessage {
    /// Shuffle request with the initiator's descriptor subset.
    Request(DescriptorBatch),
    /// Shuffle response with the recipient's descriptor subset.
    Response(DescriptorBatch),
}

impl CyclonMessage {
    fn descriptors(&self) -> &[Descriptor] {
        match self {
            CyclonMessage::Request(d) | CyclonMessage::Response(d) => d,
        }
    }
}

impl WireSize for CyclonMessage {
    fn wire_size(&self) -> usize {
        UDP_IP_HEADER_BYTES + 2 + self.descriptors().len() * DESCRIPTOR_WIRE_BYTES
    }

    fn fault_mutate(&mut self, rng: &mut SmallRng) {
        use rand::Rng;
        let descriptors = match self {
            CyclonMessage::Request(d) | CyclonMessage::Response(d) => d,
        };
        if rng.gen_bool(0.5) {
            // Truncated datagram: the descriptor list decodes short.
            let keep = rng.gen_range(0..=descriptors.len());
            descriptors.truncate(keep);
        } else if !descriptors.is_empty() {
            // Bit flip: one descriptor decodes to a bogus identity and age.
            let idx = rng.gen_range(0..descriptors.len());
            descriptors.as_mut_slice()[idx] = Descriptor::with_age(
                NodeId::new(rng.gen_range(0..1 << 20)),
                NatClass::Public,
                rng.gen_range(0..1 << 16),
            );
        }
    }
}

/// Bookkeeping for the exchange currently in flight: the peer, the subset we sent it (the
/// swapper's eviction candidates), and the retry state. `seq` doubles as the retry-timer
/// key so timers from superseded exchanges are recognisably stale.
#[derive(Clone, Debug)]
struct PendingExchange {
    peer: NodeId,
    sent: DescriptorBatch,
    seq: u64,
    attempt: u32,
}

/// A node running the Cyclon protocol.
///
/// # Examples
///
/// ```
/// use croupier_baselines::{BaselineConfig, CyclonNode};
/// use croupier_simulator::{NatClass, NodeId, PssNode, Simulation, SimulationConfig};
///
/// let mut sim = Simulation::new(SimulationConfig::default().with_seed(5));
/// for i in 0..20u64 {
///     let id = NodeId::new(i);
///     sim.register_public(id);
///     sim.add_node(id, CyclonNode::new(id, BaselineConfig::default()));
/// }
/// sim.run_for_rounds(30);
/// assert!(sim.node(NodeId::new(3)).unwrap().known_peers().len() > 5);
/// ```
#[derive(Clone, Debug)]
pub struct CyclonNode {
    id: NodeId,
    config: BaselineConfig,
    view: View,
    pending: Option<PendingExchange>,
    rounds: u64,
    exchanges_completed: u64,
    exchange_seq: u64,
    retries_fired: u64,
    abandoned_exchanges: u64,
}

impl CyclonNode {
    /// Creates a Cyclon node. Cyclon has no notion of NAT class; every node behaves the
    /// same way.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent.
    pub fn new(id: NodeId, config: BaselineConfig) -> Self {
        config.validate();
        CyclonNode {
            id,
            view: View::new(config.view_size),
            pending: None,
            rounds: 0,
            exchanges_completed: 0,
            exchange_seq: 0,
            retries_fired: 0,
            abandoned_exchanges: 0,
            config,
        }
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's partial view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Number of completed push-pull exchanges (responses received).
    pub fn exchanges_completed(&self) -> u64 {
        self.exchanges_completed
    }

    fn own_descriptor(&self) -> Descriptor {
        Descriptor::new(self.id, NatClass::Public)
    }

    fn bootstrap(&mut self, ctx: &mut Context<'_, CyclonMessage>) {
        for node in ctx.bootstrap_sample(self.config.bootstrap_size.min(self.config.view_size)) {
            if node != self.id {
                self.view.insert(Descriptor::new(node, NatClass::Public));
            }
        }
    }
}

impl Protocol for CyclonNode {
    type Message = CyclonMessage;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.bootstrap(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.rounds += 1;
        self.view.increment_ages();
        if self.view.is_empty() {
            // A node that joined before the bootstrap server knew any public node (or whose
            // whole view died) re-contacts the bootstrap server rather than staying
            // isolated forever.
            self.bootstrap(ctx);
            return;
        }
        let Some(target) = self.view.oldest().map(|d| d.node()) else {
            return;
        };
        self.view.remove(target);
        let mut sent = self
            .view
            .random_subset(self.config.shuffle_size.saturating_sub(1), ctx.rng());
        if self.pending.is_some() {
            // The previous exchange is still unanswered; starting a new one discards it.
            self.abandoned_exchanges += 1;
        }
        self.exchange_seq += 1;
        self.pending = Some(PendingExchange {
            peer: target,
            sent: sent.clone(),
            seq: self.exchange_seq,
            attempt: 0,
        });
        sent.push(self.own_descriptor());
        ctx.send(target, CyclonMessage::Request(sent));
        let policy = RetryPolicy::for_round_period(ctx.round_period());
        ctx.set_timer(policy.backoff(0), TimerKey::new(self.exchange_seq));
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    ) {
        match msg {
            CyclonMessage::Request(received) => {
                let reply = self.view.random_subset(self.config.shuffle_size, ctx.rng());
                self.view.apply_exchange_swapper(&reply, &received, self.id);
                ctx.send(from, CyclonMessage::Response(reply));
            }
            CyclonMessage::Response(received) => {
                self.exchanges_completed += 1;
                let sent = match self.pending.take() {
                    Some(pending) if pending.peer == from => pending.sent,
                    other => {
                        self.pending = other;
                        DescriptorBatch::new()
                    }
                };
                self.view.apply_exchange_swapper(&sent, &received, self.id);
            }
        }
    }

    /// Retry timer for the in-flight exchange: resend the same subset with capped
    /// exponential backoff, abandon once the budget is spent. Stale timers (their `seq`
    /// no longer matches the pending exchange) are ignored.
    fn on_timer(&mut self, key: TimerKey, ctx: &mut Context<'_, Self::Message>) {
        let (peer, next_attempt, sent) = match self.pending.as_ref() {
            Some(p) if p.seq == key.as_u64() => (p.peer, p.attempt + 1, p.sent.clone()),
            _ => return,
        };
        let policy = RetryPolicy::for_round_period(ctx.round_period());
        if policy.exhausted(next_attempt) {
            self.pending = None;
            self.abandoned_exchanges += 1;
            return;
        }
        if let Some(p) = self.pending.as_mut() {
            p.attempt = next_attempt;
        }
        let mut resend = sent;
        resend.push(self.own_descriptor());
        self.retries_fired += 1;
        ctx.send(peer, CyclonMessage::Request(resend));
        ctx.set_timer(policy.backoff(next_attempt), key);
    }
}

impl PssNode for CyclonNode {
    fn nat_class(&self) -> NatClass {
        // Cyclon is evaluated on all-public networks in the paper.
        NatClass::Public
    }

    fn known_peers(&self) -> Vec<NodeId> {
        self.view.nodes()
    }

    fn for_each_known_peer(&self, visit: &mut dyn FnMut(NodeId)) {
        for descriptor in self.view.iter() {
            visit(descriptor.node());
        }
    }

    fn draw_sample(&mut self, rng: &mut SmallRng) -> Option<NodeId> {
        self.view.random(rng).map(|d| d.node())
    }

    fn rounds_executed(&self) -> u64 {
        self.rounds
    }

    fn retries_fired(&self) -> u64 {
        self.retries_fired
    }

    fn exchanges_abandoned(&self) -> u64 {
        self.abandoned_exchanges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croupier_simulator::{Simulation, SimulationConfig};
    use std::collections::HashMap;

    fn build_sim(n: u64, seed: u64) -> Simulation<CyclonNode> {
        let mut sim = Simulation::new(SimulationConfig::default().with_seed(seed));
        for i in 0..n {
            let id = NodeId::new(i);
            sim.register_public(id);
            sim.add_node(id, CyclonNode::new(id, BaselineConfig::default()));
        }
        sim
    }

    #[test]
    fn views_fill_to_capacity() {
        let mut sim = build_sim(50, 1);
        sim.run_for_rounds(30);
        for (_, node) in sim.nodes() {
            // A node that has just initiated a shuffle has temporarily removed the target
            // from its view, so 9 entries is also acceptable at a snapshot instant.
            assert!(
                node.view().len() >= 9,
                "views should be (nearly) full after 30 rounds, got {}",
                node.view().len()
            );
            assert!(!node.view().contains(node.id()), "no self-loops");
        }
    }

    #[test]
    fn exchanges_complete_every_round() {
        let mut sim = build_sim(30, 2);
        sim.run_for_rounds(40);
        for (_, node) in sim.nodes() {
            // Allow some slack for the last in-flight round and occasional collisions.
            assert!(
                node.exchanges_completed() >= 30,
                "node completed only {} exchanges",
                node.exchanges_completed()
            );
        }
    }

    #[test]
    fn indegree_distribution_is_balanced() {
        let mut sim = build_sim(100, 3);
        sim.run_for_rounds(100);
        let mut indegree: HashMap<NodeId, usize> = HashMap::new();
        for (_, node) in sim.nodes() {
            for peer in node.known_peers() {
                *indegree.entry(peer).or_default() += 1;
            }
        }
        let max = indegree.values().copied().max().unwrap();
        let min = sim
            .node_ids()
            .iter()
            .map(|id| indegree.get(id).copied().unwrap_or(0))
            .min()
            .unwrap();
        assert!(max <= 30, "in-degree too concentrated: max {max}");
        assert!(min >= 1, "some node has no in-links");
    }

    #[test]
    fn samples_come_from_the_view() {
        let mut sim = build_sim(20, 4);
        sim.run_for_rounds(20);
        let known = sim.node(NodeId::new(5)).unwrap().known_peers();
        let sample = sim.sample_from(NodeId::new(5)).unwrap();
        assert!(known.contains(&sample));
    }

    #[test]
    fn message_sizes_scale_with_descriptors() {
        let small =
            CyclonMessage::Request(vec![Descriptor::new(NodeId::new(1), NatClass::Public)].into());
        let large = CyclonMessage::Request(
            (0..5u64)
                .map(|i| Descriptor::new(NodeId::new(i), NatClass::Public))
                .collect(),
        );
        assert_eq!(
            large.wire_size() - small.wire_size(),
            4 * DESCRIPTOR_WIRE_BYTES
        );
    }

    #[test]
    fn isolated_node_does_nothing() {
        let mut sim = Simulation::new(SimulationConfig::default().with_seed(5));
        sim.add_node(
            NodeId::new(0),
            CyclonNode::new(NodeId::new(0), BaselineConfig::default()),
        );
        sim.run_for_rounds(5);
        assert_eq!(sim.network_stats().total(), 0);
    }
}
