//! Shared configuration for the baseline protocols.

use serde::{Deserialize, Serialize};

/// Configuration shared by Cyclon, Gozar and Nylon.
///
/// Defaults mirror the paper's experimental setup (§VII-A): views of 10 entries, shuffle
/// subsets of 5 entries. The NAT-traversal parameters (relay redundancy, keep-alive period,
/// hole-punch chain TTL) follow the cited Gozar and Nylon papers.
///
/// # Examples
///
/// ```
/// use croupier_baselines::BaselineConfig;
///
/// let cfg = BaselineConfig::default().with_view_size(20);
/// assert_eq!(cfg.view_size, 20);
/// assert_eq!(cfg.shuffle_size, 5);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub struct BaselineConfig {
    /// Capacity of the partial view (paper: 10).
    pub view_size: usize,
    /// Number of descriptors sent in each view exchange (paper: 5).
    pub shuffle_size: usize,
    /// Number of public nodes requested from the bootstrap server when joining.
    pub bootstrap_size: usize,
    /// Gozar: number of redundant relay nodes each private node maintains.
    pub relay_redundancy: usize,
    /// Gozar and Nylon: rounds between keep-alive messages refreshing NAT mappings to
    /// relays / rendezvous nodes (must stay below the NAT mapping timeout).
    pub keepalive_rounds: u64,
    /// Nylon: maximum length of a rendezvous chain before a hole-punch request is dropped.
    pub chain_ttl: u32,
    /// Nylon: how many rounds a past exchange keeps counting as an "open connection"
    /// (bounded by the NAT mapping timeout).
    pub open_connection_rounds: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            view_size: 10,
            shuffle_size: 5,
            bootstrap_size: 10,
            relay_redundancy: 2,
            keepalive_rounds: 5,
            chain_ttl: 8,
            open_connection_rounds: 10,
        }
    }
}

impl BaselineConfig {
    /// Validates the configuration.
    ///
    /// # Panics
    ///
    /// Panics if `view_size` is zero or `shuffle_size` is zero or larger than `view_size`.
    pub fn validate(&self) {
        assert!(self.view_size > 0, "view_size must be positive");
        assert!(
            self.shuffle_size > 0 && self.shuffle_size <= self.view_size,
            "shuffle_size must be in 1..=view_size"
        );
        assert!(
            self.keepalive_rounds > 0,
            "keepalive_rounds must be positive"
        );
    }

    /// Sets the view capacity.
    pub fn with_view_size(mut self, view_size: usize) -> Self {
        self.view_size = view_size;
        self
    }

    /// Sets the shuffle subset size.
    pub fn with_shuffle_size(mut self, shuffle_size: usize) -> Self {
        self.shuffle_size = shuffle_size;
        self
    }

    /// Sets Gozar's relay redundancy.
    pub fn with_relay_redundancy(mut self, relays: usize) -> Self {
        self.relay_redundancy = relays;
        self
    }

    /// Sets the keep-alive period in rounds.
    pub fn with_keepalive_rounds(mut self, rounds: u64) -> Self {
        self.keepalive_rounds = rounds;
        self
    }

    /// Sets Nylon's maximum rendezvous-chain length.
    pub fn with_chain_ttl(mut self, ttl: u32) -> Self {
        self.chain_ttl = ttl;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_the_papers_setup() {
        let c = BaselineConfig::default();
        assert_eq!(c.view_size, 10);
        assert_eq!(c.shuffle_size, 5);
        assert_eq!(c.relay_redundancy, 2);
        c.validate();
    }

    #[test]
    fn builders_update_fields() {
        let c = BaselineConfig::default()
            .with_view_size(16)
            .with_shuffle_size(8)
            .with_relay_redundancy(3)
            .with_keepalive_rounds(10)
            .with_chain_ttl(4);
        assert_eq!(c.view_size, 16);
        assert_eq!(c.shuffle_size, 8);
        assert_eq!(c.relay_redundancy, 3);
        assert_eq!(c.keepalive_rounds, 10);
        assert_eq!(c.chain_ttl, 4);
        c.validate();
    }

    #[test]
    #[should_panic(expected = "shuffle_size")]
    fn oversized_shuffle_is_rejected() {
        BaselineConfig::default().with_shuffle_size(99).validate();
    }
}
