//! Nylon: NAT-resilient gossip peer sampling through chains of rendezvous nodes
//! (Kermarrec, Pace, Quéma & Schiavoni, ICDCS 2009).
//!
//! Nylon keeps a single Cyclon-style view. Reachability of private nodes is obtained by
//! *hole punching*, coordinated through **rendezvous nodes (RVPs)**: two nodes become each
//! other's RVP whenever they exchange views. To shuffle with a private node, the initiator
//! sends a hole-punch request that is routed hop-by-hop along the chain of RVPs through
//! which the target's descriptor travelled; the node at the end of the chain still has an
//! open NAT mapping to the target and delivers the request; the target then *punches* a
//! direct path back to the initiator and the view exchange proceeds directly.
//!
//! The RVP chains are unbounded in the original protocol; under churn they break, which is
//! why Nylon degrades faster than Gozar and Croupier in the paper's failure experiments.
//! Private nodes also pay keep-alive traffic towards their RVPs to keep NAT mappings open.
//!
//! Hole-punch routing, punching and keep-alives all go through the engine-agnostic
//! [`Context`]/[`Transport`](croupier_simulator::Transport)
//! seam, so the same state machine runs unchanged on both engines.

use std::collections::HashMap;

use croupier::{Descriptor, DescriptorBatch, View, DESCRIPTOR_WIRE_BYTES, UDP_IP_HEADER_BYTES};
use croupier_simulator::{Context, NatClass, NodeId, Protocol, PssNode, WireSize};
use rand::rngs::SmallRng;
use serde::{Deserialize, Serialize};

use crate::config::BaselineConfig;

/// How many rounds an entry may wait for a hole punch before the pending shuffle is
/// abandoned.
const PUNCH_PATIENCE_ROUNDS: u64 = 5;

/// How many rounds a sent shuffle subset may wait for its response before the exchange is
/// abandoned and its swapper bookkeeping released.
const PENDING_PATIENCE_ROUNDS: u64 = 5;

/// Expired hole-punch waits charged against a chain's first hop before the hop is
/// considered dead; routes through a dead hop are invalidated so fresh chains can be
/// learned, instead of feeding more requests into a broken one.
const HOP_SUSPECT_STRIKES: u32 = 2;

/// Maximum number of RVPs a private node keeps alive with periodic traffic. Nylon nodes
/// must keep NAT mappings open towards every rendezvous node that may have to forward
/// hole-punch requests to them, which is most of their recent exchange partners — a key
/// contributor to Nylon's overhead in Fig. 7(a) of the Croupier paper.
const MAX_KEEPALIVE_TARGETS: usize = 10;

/// Nylon's messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum NylonMessage {
    /// A view-exchange request, always sent over a direct (possibly hole-punched) path.
    ShuffleRequest {
        /// The initiating node.
        initiator: NodeId,
        /// The initiator's connectivity class.
        initiator_class: NatClass,
        /// Subset of the initiator's view including its own fresh descriptor.
        descriptors: DescriptorBatch,
    },
    /// A view-exchange response, sent directly back to the initiator.
    ShuffleResponse {
        /// Subset of the responder's view.
        descriptors: DescriptorBatch,
    },
    /// A hole-punch request routed along the chain of rendezvous nodes towards `target`.
    HolePunchRequest {
        /// The node that wants to shuffle with `target`.
        initiator: NodeId,
        /// The private node to be reached.
        target: NodeId,
        /// Remaining hops before the request is dropped.
        ttl: u32,
    },
    /// The punch packet a private target sends directly to the initiator; it opens the
    /// target's NAT mapping towards the initiator.
    HolePunch {
        /// The private node that punched.
        target: NodeId,
    },
    /// Keep-alive from a private node to one of its rendezvous nodes.
    KeepAlive,
}

impl NylonMessage {
    /// Corruption helper: truncate a descriptor list (as a short datagram decodes) or
    /// scramble one descriptor into a bogus identity, class and age.
    fn mutate_descriptors(descriptors: &mut DescriptorBatch, rng: &mut SmallRng) {
        use rand::Rng;
        if rng.gen_bool(0.5) {
            let keep = rng.gen_range(0..=descriptors.len());
            descriptors.truncate(keep);
        } else if !descriptors.is_empty() {
            let idx = rng.gen_range(0..descriptors.len());
            descriptors.as_mut_slice()[idx] = Descriptor::with_age(
                NodeId::new(rng.gen_range(0..1 << 20)),
                if rng.gen_bool(0.5) {
                    NatClass::Public
                } else {
                    NatClass::Private
                },
                rng.gen_range(0..1 << 16),
            );
        }
    }
}

impl WireSize for NylonMessage {
    fn wire_size(&self) -> usize {
        let payload = match self {
            NylonMessage::ShuffleRequest { descriptors, .. } => {
                10 + descriptors.len() * DESCRIPTOR_WIRE_BYTES
            }
            NylonMessage::ShuffleResponse { descriptors } => {
                2 + descriptors.len() * DESCRIPTOR_WIRE_BYTES
            }
            NylonMessage::HolePunchRequest { .. } => 18,
            NylonMessage::HolePunch { .. } => 8,
            NylonMessage::KeepAlive => 2,
        };
        UDP_IP_HEADER_BYTES + payload
    }

    fn fault_mutate(&mut self, rng: &mut SmallRng) {
        use rand::Rng;
        match self {
            NylonMessage::ShuffleRequest {
                initiator_class,
                descriptors,
                ..
            } => {
                if rng.gen_bool(0.25) {
                    *initiator_class = match *initiator_class {
                        NatClass::Public => NatClass::Private,
                        NatClass::Private => NatClass::Public,
                    };
                } else {
                    Self::mutate_descriptors(descriptors, rng);
                }
            }
            NylonMessage::ShuffleResponse { descriptors } => {
                Self::mutate_descriptors(descriptors, rng);
            }
            NylonMessage::HolePunchRequest { target, ttl, .. } => {
                if rng.gen_bool(0.5) {
                    // A scrambled target sends the chain hunting for a bogus node.
                    *target = NodeId::new(rng.gen_range(0..1 << 20));
                } else {
                    *ttl = rng.gen_range(0..=*ttl);
                }
            }
            NylonMessage::HolePunch { target } => {
                *target = NodeId::new(rng.gen_range(0..1 << 20));
            }
            NylonMessage::KeepAlive => {}
        }
    }
}

/// A node running the Nylon protocol.
#[derive(Clone, Debug)]
pub struct NylonNode {
    id: NodeId,
    class: NatClass,
    config: BaselineConfig,
    view: View,
    /// Next hop towards each known node: the neighbour from which its descriptor was
    /// learned (the RVP chain).
    next_hop: HashMap<NodeId, NodeId>,
    /// Round of the most recent direct exchange with each peer ("open connection").
    open_connections: HashMap<NodeId, u64>,
    /// Shuffle subsets sent and awaiting a response, keyed by peer and stamped with the
    /// round in which they were sent (entries expire after [`PENDING_PATIENCE_ROUNDS`]).
    /// The subsets are inline, so the per-round insert/remove churn touches no payload
    /// heap memory.
    pending: HashMap<NodeId, (DescriptorBatch, u64)>,
    /// Shuffle subsets prepared and waiting for a hole punch, keyed by target and stamped
    /// with the round in which they were created plus the chain hop the hole-punch
    /// request was routed through (charged with a strike if the punch never arrives).
    awaiting_punch: HashMap<NodeId, (DescriptorBatch, u64, NodeId)>,
    /// Expiry strikes against chain first-hops; a hop at [`HOP_SUSPECT_STRIKES`] is
    /// treated as dead until it sends us anything.
    hop_suspect: HashMap<NodeId, u32>,
    rounds: u64,
    punches_forwarded: u64,
    exchanges_completed: u64,
    unreachable_targets: u64,
    abandoned_exchanges: u64,
}

impl NylonNode {
    /// Creates a Nylon node of the given connectivity class.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent.
    pub fn new(id: NodeId, class: NatClass, config: BaselineConfig) -> Self {
        config.validate();
        NylonNode {
            id,
            class,
            view: View::new(config.view_size),
            next_hop: HashMap::new(),
            open_connections: HashMap::new(),
            pending: HashMap::new(),
            awaiting_punch: HashMap::new(),
            hop_suspect: HashMap::new(),
            rounds: 0,
            punches_forwarded: 0,
            exchanges_completed: 0,
            unreachable_targets: 0,
            abandoned_exchanges: 0,
            config,
        }
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's partial view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// Number of hole-punch requests this node forwarded as part of an RVP chain.
    pub fn punches_forwarded(&self) -> u64 {
        self.punches_forwarded
    }

    /// Number of completed view exchanges.
    pub fn exchanges_completed(&self) -> u64 {
        self.exchanges_completed
    }

    /// Number of shuffle attempts abandoned because no route to the private target existed.
    pub fn unreachable_targets(&self) -> u64 {
        self.unreachable_targets
    }

    fn own_descriptor(&self) -> Descriptor {
        Descriptor::new(self.id, self.class)
    }

    fn bootstrap(&mut self, ctx: &mut Context<'_, NylonMessage>) {
        for node in ctx.bootstrap_sample(self.config.bootstrap_size.min(self.config.view_size)) {
            if node != self.id {
                self.view.insert(Descriptor::new(node, NatClass::Public));
            }
        }
    }

    fn connection_open(&self, peer: NodeId) -> bool {
        self.open_connections
            .get(&peer)
            .map(|round| self.rounds.saturating_sub(*round) < self.config.open_connection_rounds)
            .unwrap_or(false)
    }

    fn absorb(&mut self, learned_from: NodeId, sent: &[Descriptor], received: &[Descriptor]) {
        for d in received {
            if d.node() != self.id && d.class().is_private() {
                self.next_hop.insert(d.node(), learned_from);
            }
        }
        self.view.apply_exchange_swapper(sent, received, self.id);
    }

    fn send_direct_shuffle(
        &mut self,
        target: NodeId,
        sent: DescriptorBatch,
        ctx: &mut Context<'_, NylonMessage>,
    ) {
        let mut descriptors = sent.clone();
        descriptors.push(self.own_descriptor());
        if self.pending.insert(target, (sent, self.rounds)).is_some() {
            // A new shuffle to the same peer displaces an unanswered one.
            self.abandoned_exchanges += 1;
        }
        ctx.send(
            target,
            NylonMessage::ShuffleRequest {
                initiator: self.id,
                initiator_class: self.class,
                descriptors,
            },
        );
    }

    fn maintain_keepalives(&mut self, ctx: &mut Context<'_, NylonMessage>) {
        // Nylon must keep a NAT mapping open towards *every* rendezvous node that may have
        // to forward a hole-punch request (roughly its whole in-view), whereas Gozar only
        // keeps a couple of dedicated relays alive.
        let period = self.config.keepalive_rounds.max(1);
        if self.class.is_public() || !self.rounds.is_multiple_of(period) {
            return;
        }
        let mut rvps: Vec<(NodeId, u64)> = self
            .open_connections
            .iter()
            .map(|(node, round)| (*node, *round))
            .collect();
        // Most recently used first; ties broken by identifier for determinism.
        rvps.sort_by_key(|(node, round)| (std::cmp::Reverse(*round), *node));
        for (rvp, _) in rvps.into_iter().take(MAX_KEEPALIVE_TARGETS) {
            ctx.send(rvp, NylonMessage::KeepAlive);
        }
    }

    fn expire_stale_punch_waits(&mut self) {
        let rounds = self.rounds;
        let mut abandoned = 0u64;
        let mut struck_hops: Vec<NodeId> = Vec::new();
        self.awaiting_punch.retain(|_, (_, created, hop)| {
            let keep = rounds.saturating_sub(*created) <= PUNCH_PATIENCE_ROUNDS;
            if !keep {
                abandoned += 1;
                struck_hops.push(*hop);
            }
            keep
        });
        for hop in struck_hops {
            // The punch never arrived: the chain through this hop is broken somewhere.
            *self.hop_suspect.entry(hop).or_insert(0) += 1;
        }
        self.abandoned_exchanges += abandoned;
    }

    /// Expires unanswered direct shuffles so their swapper bookkeeping cannot pile up
    /// forever behind lost responses.
    fn expire_stale_pending(&mut self) {
        let rounds = self.rounds;
        let mut abandoned = 0u64;
        self.pending.retain(|_, (_, sent_round)| {
            let keep = rounds.saturating_sub(*sent_round) <= PENDING_PATIENCE_ROUNDS;
            if !keep {
                abandoned += 1;
            }
            keep
        });
        self.abandoned_exchanges += abandoned;
    }

    /// Returns `true` if `hop` has accumulated enough expiry strikes to be treated as a
    /// dead chain hop.
    fn is_suspected_hop(&self, hop: NodeId) -> bool {
        self.hop_suspect.get(&hop).copied().unwrap_or(0) >= HOP_SUSPECT_STRIKES
    }
}

impl Protocol for NylonNode {
    type Message = NylonMessage;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.bootstrap(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.rounds += 1;
        self.view.increment_ages();
        self.expire_stale_punch_waits();
        self.expire_stale_pending();
        self.maintain_keepalives(ctx);
        if self.view.is_empty() {
            // Re-contact the bootstrap server instead of staying isolated (see Cyclon).
            self.bootstrap(ctx);
            return;
        }

        let Some(target_descriptor) = self.view.oldest().copied() else {
            return;
        };
        let target = target_descriptor.node();
        self.view.remove(target);
        let sent = self
            .view
            .random_subset(self.config.shuffle_size.saturating_sub(1), ctx.rng());

        if target_descriptor.class().is_public() || self.connection_open(target) {
            self.send_direct_shuffle(target, sent, ctx);
            return;
        }

        // Private target without an open connection: route a hole-punch request along the
        // RVP chain.
        match self.next_hop.get(&target).copied() {
            Some(next) if !self.is_suspected_hop(next) => {
                if self
                    .awaiting_punch
                    .insert(target, (sent, self.rounds, next))
                    .is_some()
                {
                    // A fresh punch wait displaces an unexpired one for the same target.
                    self.abandoned_exchanges += 1;
                }
                ctx.send(
                    next,
                    NylonMessage::HolePunchRequest {
                        initiator: self.id,
                        target,
                        ttl: self.config.chain_ttl,
                    },
                );
            }
            Some(dead_hop) => {
                // The chain's first hop is suspected dead: invalidate the route so the
                // next exchange can learn a fresh chain instead of feeding this one.
                debug_assert!(self.is_suspected_hop(dead_hop));
                self.next_hop.remove(&target);
                self.unreachable_targets += 1;
            }
            None => {
                self.unreachable_targets += 1;
            }
        }
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    ) {
        // Any delivered message is proof of life: clear expiry strikes against the
        // sender so a once-congested hop becomes routable again.
        self.hop_suspect.remove(&from);
        match msg {
            NylonMessage::ShuffleRequest {
                initiator,
                initiator_class: _,
                descriptors,
            } => {
                self.open_connections.insert(initiator, self.rounds);
                let reply = self.view.random_subset(self.config.shuffle_size, ctx.rng());
                self.absorb(from, &reply, &descriptors);
                ctx.send(
                    initiator,
                    NylonMessage::ShuffleResponse { descriptors: reply },
                );
            }
            NylonMessage::ShuffleResponse { descriptors } => {
                self.exchanges_completed += 1;
                self.open_connections.insert(from, self.rounds);
                let (sent, _) = self.pending.remove(&from).unwrap_or_default();
                self.absorb(from, &sent, &descriptors);
            }
            NylonMessage::HolePunchRequest {
                initiator,
                target,
                ttl,
            } => {
                if target == self.id {
                    // End of the chain: punch a direct path back to the initiator and wait
                    // for its shuffle request.
                    self.open_connections.insert(initiator, self.rounds);
                    ctx.send(initiator, NylonMessage::HolePunch { target: self.id });
                    return;
                }
                if ttl == 0 {
                    return;
                }
                self.punches_forwarded += 1;
                if self.connection_open(target) {
                    // We are the target's RVP: deliver the request straight through the NAT
                    // mapping the target keeps open towards us.
                    ctx.send(
                        target,
                        NylonMessage::HolePunchRequest {
                            initiator,
                            target,
                            ttl: ttl - 1,
                        },
                    );
                } else if let Some(next) = self.next_hop.get(&target).copied() {
                    ctx.send(
                        next,
                        NylonMessage::HolePunchRequest {
                            initiator,
                            target,
                            ttl: ttl - 1,
                        },
                    );
                }
                // No route: the request dies here, as it would in the real protocol.
            }
            NylonMessage::HolePunch { target } => {
                self.open_connections.insert(target, self.rounds);
                if let Some((sent, _, _)) = self.awaiting_punch.remove(&target) {
                    self.send_direct_shuffle(target, sent, ctx);
                }
            }
            NylonMessage::KeepAlive => {
                // Receiving a keep-alive marks the sender as reachable through the mapping
                // it just refreshed, so we can keep acting as its RVP.
                self.open_connections.insert(from, self.rounds);
            }
        }
    }
}

impl PssNode for NylonNode {
    fn nat_class(&self) -> NatClass {
        self.class
    }

    fn known_peers(&self) -> Vec<NodeId> {
        self.view.nodes()
    }

    fn for_each_known_peer(&self, visit: &mut dyn FnMut(NodeId)) {
        for descriptor in self.view.iter() {
            visit(descriptor.node());
        }
    }

    fn draw_sample(&mut self, rng: &mut SmallRng) -> Option<NodeId> {
        self.view.random(rng).map(|d| d.node())
    }

    fn rounds_executed(&self) -> u64 {
        self.rounds
    }

    fn exchanges_abandoned(&self) -> u64 {
        self.abandoned_exchanges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croupier_nat::NatTopologyBuilder;
    use croupier_simulator::{Simulation, SimulationConfig};

    fn build_sim(n_public: u64, n_private: u64, seed: u64) -> Simulation<NylonNode> {
        let topology = NatTopologyBuilder::new(seed).build();
        let mut sim = Simulation::new(SimulationConfig::default().with_seed(seed));
        sim.set_delivery_filter(topology.clone());
        for i in 0..(n_public + n_private) {
            let id = NodeId::new(i);
            let class = if i < n_public {
                NatClass::Public
            } else {
                NatClass::Private
            };
            topology.add_node(id, class);
            if class.is_public() {
                sim.register_public(id);
            }
            sim.add_node(id, NylonNode::new(id, class, BaselineConfig::default()));
        }
        sim
    }

    #[test]
    fn views_fill_and_contain_private_nodes() {
        let mut sim = build_sim(5, 20, 1);
        sim.run_for_rounds(60);
        let mut with_private = 0;
        for (_, node) in sim.nodes() {
            assert!(!node.view().is_empty());
            if node.view().iter().any(|d| d.class().is_private()) {
                with_private += 1;
            }
        }
        assert!(
            with_private > 12,
            "private nodes should spread through views, got {with_private}"
        );
    }

    #[test]
    fn exchanges_complete_including_private_targets() {
        let mut sim = build_sim(5, 20, 2);
        sim.run_for_rounds(60);
        let total: u64 = sim.nodes().map(|(_, n)| n.exchanges_completed()).sum();
        assert!(
            total > 500,
            "expected plenty of completed exchanges, got {total}"
        );
        let punches: u64 = sim.nodes().map(|(_, n)| n.punches_forwarded()).sum();
        assert!(punches > 0, "RVP chains should have forwarded hole punches");
    }

    #[test]
    fn hole_punching_opens_direct_paths() {
        let mut sim = build_sim(5, 20, 3);
        sim.run_for_rounds(60);
        // Private-to-private exchanges require punching; count exchanges completed by
        // private nodes as evidence that punching works.
        let private_exchanges: u64 = sim
            .nodes()
            .filter(|(_, n)| n.nat_class().is_private())
            .map(|(_, n)| n.exchanges_completed())
            .sum();
        assert!(
            private_exchanges > 200,
            "private nodes should complete exchanges, got {private_exchanges}"
        );
    }

    #[test]
    fn keepalives_are_sent_by_private_nodes_only() {
        let mut sim = build_sim(3, 10, 4);
        sim.run_for_rounds(60);
        // Keep-alives are the cheapest messages; verify private nodes send more messages
        // than rounds (shuffles + keep-alives) while remaining bounded.
        for (id, node) in sim.nodes() {
            let sent = sim.traffic().node_or_default(id).messages_sent;
            if node.nat_class().is_private() {
                assert!(sent > 0);
            }
        }
    }

    #[test]
    fn lost_exchanges_expire_and_are_counted_abandoned() {
        use croupier_simulator::BernoulliLoss;
        // Total loss: every shuffle and punch wait goes unanswered, so the patience
        // windows must expire them instead of letting the pending maps grow forever.
        let mut sim = build_sim(5, 20, 9);
        sim.set_loss_model(BernoulliLoss::new(1.0));
        sim.run_for_rounds(30);
        let abandoned: u64 = sim.nodes().map(|(_, n)| n.exchanges_abandoned()).sum();
        assert!(abandoned > 0, "expiry should count abandoned exchanges");
        // One shuffle starts per round, so at most one pending entry per round of the
        // patience window can be alive at any instant.
        let cap = PENDING_PATIENCE_ROUNDS as usize + 1;
        for (_, node) in sim.nodes() {
            assert!(
                node.pending.len() <= cap,
                "stale pending entries must expire, got {}",
                node.pending.len()
            );
            assert!(node.awaiting_punch.len() <= cap);
        }
    }

    #[test]
    fn unreachable_targets_are_counted_not_retried_forever() {
        // With zero public nodes, nothing can bootstrap, so no shuffle can ever leave.
        let mut sim = build_sim(0, 5, 5);
        sim.run_for_rounds(10);
        assert_eq!(sim.network_stats().total(), 0);
    }

    #[test]
    fn message_sizes_are_accounted() {
        let req = NylonMessage::ShuffleRequest {
            initiator: NodeId::new(1),
            initiator_class: NatClass::Private,
            descriptors: (0..5u64)
                .map(|i| Descriptor::new(NodeId::new(i), NatClass::Public))
                .collect::<DescriptorBatch>(),
        };
        assert!(req.wire_size() > NylonMessage::KeepAlive.wire_size());
        assert!(
            NylonMessage::HolePunchRequest {
                initiator: NodeId::new(1),
                target: NodeId::new(2),
                ttl: 3,
            }
            .wire_size()
                < req.wire_size()
        );
    }

    #[test]
    fn nylon_sends_more_messages_than_croupier() {
        // Croupier needs exactly one request and one response per node per round; Nylon
        // additionally pays hole-punch chains and keep-alives. (Figure 7(a) of the paper
        // reports the byte-level comparison relative to Cyclon; the message-count ordering
        // tested here is the mechanism behind it.)
        let mut nylon = build_sim(5, 20, 6);
        nylon.run_for_rounds(50);
        let nylon_messages = nylon.traffic().total_messages_sent();

        let topology = NatTopologyBuilder::new(6).build();
        let mut croupier_sim = Simulation::new(SimulationConfig::default().with_seed(6));
        croupier_sim.set_delivery_filter(topology.clone());
        for i in 0..25u64 {
            let id = NodeId::new(i);
            let class = if i < 5 {
                NatClass::Public
            } else {
                NatClass::Private
            };
            topology.add_node(id, class);
            if class.is_public() {
                croupier_sim.register_public(id);
            }
            croupier_sim.add_node(
                id,
                croupier::CroupierNode::new(id, class, croupier::CroupierConfig::default()),
            );
        }
        croupier_sim.run_for_rounds(50);
        assert!(nylon_messages > croupier_sim.traffic().total_messages_sent());
    }
}
