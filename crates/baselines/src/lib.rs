//! # croupier-baselines
//!
//! The three peer-sampling services the Croupier paper compares against, re-implemented
//! from their published descriptions (as the paper's authors did on Kompics):
//!
//! * [`CyclonNode`] — **Cyclon** (Voulgaris et al., 2005): the classic single-view gossip
//!   PSS with tail selection and swapper merging. NAT-oblivious; the paper uses it as the
//!   randomness baseline on all-public networks.
//! * [`GozarNode`] — **Gozar** (Payberah et al., DAIS 2011): NAT-aware PSS based on
//!   *one-hop relaying*. Private nodes register with a redundant set of public relay nodes,
//!   keep their NAT mappings to those relays alive, and advertise the relays inside their
//!   node descriptors; anyone shuffling with a private node sends the exchange through one
//!   of its relays.
//! * [`NylonNode`] — **Nylon** (Kermarrec et al., ICDCS 2009): NAT-aware PSS based on
//!   *hole punching through chains of rendezvous nodes (RVPs)*. Nodes that have exchanged
//!   views become each other's RVPs; a shuffle with a private node routes a hole-punch
//!   request hop-by-hop through RVPs until it reaches the target, which then punches a
//!   direct connection back to the initiator.
//!
//! All three implement the simulator's [`Protocol`](croupier_simulator::Protocol) and
//! [`PssNode`](croupier_simulator::PssNode) traits against the engine-agnostic
//! [`Context`](croupier_simulator::Context)/[`Transport`](croupier_simulator::Transport)
//! seam, use the same view size, shuffle length,
//! selection (tail) and merge (swapper) policies as the Croupier implementation, and account
//! message sizes with the same conventions, so the evaluation crate can compare the four
//! systems under identical conditions — exactly the setup of §VII-A of the paper.

#![warn(missing_docs)]
#![warn(rust_2018_idioms)]

pub mod config;
pub mod cyclon;
pub mod gozar;
pub mod nylon;

pub use config::BaselineConfig;
pub use cyclon::{CyclonMessage, CyclonNode};
pub use gozar::{GozarMessage, GozarNode};
pub use nylon::{NylonMessage, NylonNode};
