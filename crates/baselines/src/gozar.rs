//! Gozar: NAT-friendly peer sampling with one-hop distributed relaying
//! (Payberah, Dowling & Haridi, DAIS 2011).
//!
//! Gozar keeps a single Cyclon-style view but makes private nodes reachable by *relaying*:
//!
//! * every private node registers with a small, redundant set of public **relay nodes** and
//!   refreshes its NAT mappings to them with periodic keep-alives;
//! * node descriptors of private nodes carry the addresses of their relays, so anyone who
//!   wants to shuffle with a private node can send the exchange through one of them
//!   (exactly one extra hop);
//! * responses travel the reverse path (or directly, when the initiator is public).
//!
//! Compared with Croupier this costs relay traffic on public nodes, keep-alive traffic on
//! private nodes and larger descriptors — the overhead gap measured in Fig. 7(a) of the
//! Croupier paper.
//!
//! All relay and keep-alive traffic is emitted through the engine-agnostic
//! [`Context`]/[`Transport`](croupier_simulator::Transport)
//! seam, so the same state machine runs unchanged on both engines.

use std::collections::HashMap;

use croupier::{Descriptor, DescriptorBatch, View, DESCRIPTOR_WIRE_BYTES, UDP_IP_HEADER_BYTES};
use croupier_simulator::{
    Context, InlineVec, NatClass, NodeId, Protocol, PssNode, RetryPolicy, TimerKey, WireSize,
};
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use serde::{Deserialize, Serialize};

use crate::config::BaselineConfig;

/// Wire bytes per relay address carried inside a descriptor (IPv4 + port).
const RELAY_ADDR_BYTES: usize = 6;

/// Inline capacity of relay lists: double the default relay redundancy (2); larger
/// redundancy configurations spill to the heap transparently.
pub const RELAY_INLINE_CAPACITY: usize = 4;

/// The relay addresses carried inside a Gozar view entry, stored inline so entries clone
/// without heap allocation on the shuffle hot path.
pub type RelayList = InlineVec<NodeId, RELAY_INLINE_CAPACITY>;

/// Inline capacity of a shuffle's entry list (`shuffle_size + 1` with headroom, like
/// [`croupier::DESCRIPTOR_INLINE_CAPACITY`]).
pub const ENTRY_INLINE_CAPACITY: usize = 8;

/// The entry list carried in Gozar shuffle messages.
pub type EntryBatch = InlineVec<GozarEntry, ENTRY_INLINE_CAPACITY>;

/// A view entry as exchanged by Gozar: a descriptor plus, for private nodes, the addresses
/// of their relay nodes.
#[derive(Clone, Debug, Default, PartialEq, Serialize, Deserialize)]
pub struct GozarEntry {
    /// The node descriptor.
    pub descriptor: Descriptor,
    /// Relay nodes through which the described node can be reached (empty for public
    /// nodes).
    pub relays: RelayList,
}

impl GozarEntry {
    /// Creates an entry for a public node (no relays).
    pub fn public(descriptor: Descriptor) -> Self {
        GozarEntry {
            descriptor,
            relays: RelayList::new(),
        }
    }

    fn wire_bytes(&self) -> usize {
        DESCRIPTOR_WIRE_BYTES + self.relays.len() * RELAY_ADDR_BYTES
    }
}

/// Gozar's messages.
#[derive(Clone, Debug, PartialEq, Serialize, Deserialize)]
pub enum GozarMessage {
    /// A view-exchange request. Carries the initiator's identity, class and relays so the
    /// recipient can route the response.
    ShuffleRequest {
        /// The node that initiated the exchange.
        initiator: NodeId,
        /// The initiator's connectivity class.
        initiator_class: NatClass,
        /// The initiator's relay nodes (empty if it is public).
        initiator_relays: RelayList,
        /// Subset of the initiator's view, including its own fresh entry.
        entries: EntryBatch,
    },
    /// A view-exchange response.
    ShuffleResponse {
        /// Subset of the responder's view.
        entries: EntryBatch,
    },
    /// One-hop relaying envelope: the receiving relay forwards `inner` to `dest`.
    Relayed {
        /// Final destination of the inner message.
        dest: NodeId,
        /// The relayed message.
        inner: Box<GozarMessage>,
    },
    /// Private node → public node: request to act as a relay.
    RelayRegister,
    /// Public node → private node: acknowledgement of a registration or keep-alive.
    RelayAccept,
    /// Private node → relay: refreshes the NAT mapping so relayed traffic keeps flowing.
    KeepAlive,
}

impl GozarMessage {
    /// Corruption helper shared by the entry-carrying variants: truncate the list (as a
    /// short datagram decodes) or scramble one entry's descriptor and relays.
    fn mutate_entries(entries: &mut EntryBatch, rng: &mut SmallRng) {
        use rand::Rng;
        if rng.gen_bool(0.5) {
            let keep = rng.gen_range(0..=entries.len());
            entries.truncate(keep);
        } else if !entries.is_empty() {
            let idx = rng.gen_range(0..entries.len());
            let entry = &mut entries.as_mut_slice()[idx];
            entry.descriptor = Descriptor::with_age(
                NodeId::new(rng.gen_range(0..1 << 20)),
                if rng.gen_bool(0.5) {
                    NatClass::Public
                } else {
                    NatClass::Private
                },
                rng.gen_range(0..1 << 16),
            );
            entry.relays.clear();
        }
    }
}

impl WireSize for GozarMessage {
    fn wire_size(&self) -> usize {
        match self {
            GozarMessage::ShuffleRequest {
                initiator_relays,
                entries,
                ..
            } => {
                UDP_IP_HEADER_BYTES
                    + 8
                    + initiator_relays.len() * RELAY_ADDR_BYTES
                    + entries.iter().map(GozarEntry::wire_bytes).sum::<usize>()
            }
            GozarMessage::ShuffleResponse { entries } => {
                UDP_IP_HEADER_BYTES + 2 + entries.iter().map(GozarEntry::wire_bytes).sum::<usize>()
            }
            GozarMessage::Relayed { inner, .. } => 6 + inner.wire_size(),
            GozarMessage::RelayRegister | GozarMessage::RelayAccept | GozarMessage::KeepAlive => {
                UDP_IP_HEADER_BYTES + 2
            }
        }
    }

    fn fault_mutate(&mut self, rng: &mut SmallRng) {
        use rand::Rng;
        match self {
            GozarMessage::ShuffleRequest {
                initiator_class,
                initiator_relays,
                entries,
                ..
            } => match rng.gen_range(0..3u8) {
                0 => Self::mutate_entries(entries, rng),
                // A flipped class bit makes the responder route the reply wrongly.
                1 => {
                    *initiator_class = match *initiator_class {
                        NatClass::Public => NatClass::Private,
                        NatClass::Private => NatClass::Public,
                    };
                }
                // Lost relay list: a private initiator becomes unreachable for replies.
                _ => initiator_relays.clear(),
            },
            GozarMessage::ShuffleResponse { entries } => Self::mutate_entries(entries, rng),
            GozarMessage::Relayed { dest, inner } => {
                if rng.gen_bool(0.5) {
                    // A scrambled destination sends the envelope to a bogus node.
                    *dest = NodeId::new(rng.gen_range(0..1 << 20));
                } else {
                    inner.fault_mutate(rng);
                }
            }
            GozarMessage::RelayRegister | GozarMessage::RelayAccept | GozarMessage::KeepAlive => {}
        }
    }
}

/// Timed-out requests through a relay before the relay is considered dead and excluded
/// from relay selection (until it shows signs of life again).
const RELAY_SUSPECT_STRIKES: u32 = 2;

/// Bookkeeping for the exchange currently in flight: the peer, the subset we sent (the
/// swapper's eviction candidates), the relay the request travelled through (`None` for
/// direct sends), and the retry state. `seq` doubles as the retry-timer key.
#[derive(Clone, Debug)]
struct PendingExchange {
    peer: NodeId,
    sent: DescriptorBatch,
    relay: Option<NodeId>,
    seq: u64,
    attempt: u32,
}

/// A node running the Gozar protocol.
///
/// See the crate-level documentation for the comparison setup shared with the other
/// protocols.
#[derive(Clone, Debug)]
pub struct GozarNode {
    id: NodeId,
    class: NatClass,
    config: BaselineConfig,
    view: View,
    /// Relays advertised by private nodes we know about.
    relay_cache: HashMap<NodeId, RelayList>,
    /// Our own relays (private nodes only).
    my_relays: RelayList,
    /// Round in which each of our relays last acknowledged us.
    relay_last_ack: HashMap<NodeId, u64>,
    /// Timeout strikes against relays we routed requests through; a relay at
    /// [`RELAY_SUSPECT_STRIKES`] is treated as dead until it sends us anything.
    relay_suspect: HashMap<NodeId, u32>,
    pending: Option<PendingExchange>,
    rounds: u64,
    messages_relayed: u64,
    exchanges_completed: u64,
    unreachable_targets: u64,
    exchange_seq: u64,
    retries_fired: u64,
    abandoned_exchanges: u64,
}

impl GozarNode {
    /// Creates a Gozar node of the given connectivity class.
    ///
    /// # Panics
    ///
    /// Panics if `config` is inconsistent.
    pub fn new(id: NodeId, class: NatClass, config: BaselineConfig) -> Self {
        config.validate();
        GozarNode {
            id,
            class,
            view: View::new(config.view_size),
            relay_cache: HashMap::new(),
            my_relays: RelayList::new(),
            relay_last_ack: HashMap::new(),
            relay_suspect: HashMap::new(),
            pending: None,
            rounds: 0,
            messages_relayed: 0,
            exchanges_completed: 0,
            unreachable_targets: 0,
            exchange_seq: 0,
            retries_fired: 0,
            abandoned_exchanges: 0,
            config,
        }
    }

    /// The node's identity.
    pub fn id(&self) -> NodeId {
        self.id
    }

    /// The node's partial view.
    pub fn view(&self) -> &View {
        &self.view
    }

    /// The relays this (private) node is registered with.
    pub fn relays(&self) -> &[NodeId] {
        &self.my_relays
    }

    /// Number of messages this (public) node has forwarded on behalf of private nodes.
    pub fn messages_relayed(&self) -> u64 {
        self.messages_relayed
    }

    /// Number of completed view exchanges.
    pub fn exchanges_completed(&self) -> u64 {
        self.exchanges_completed
    }

    /// Number of shuffle attempts abandoned because no relay was known for a private
    /// target.
    pub fn unreachable_targets(&self) -> u64 {
        self.unreachable_targets
    }

    fn bootstrap(&mut self, ctx: &mut Context<'_, GozarMessage>) {
        for node in ctx.bootstrap_sample(self.config.bootstrap_size.min(self.config.view_size)) {
            if node != self.id {
                self.view.insert(Descriptor::new(node, NatClass::Public));
            }
        }
    }

    fn own_entry(&self) -> GozarEntry {
        GozarEntry {
            descriptor: Descriptor::new(self.id, self.class),
            relays: self.my_relays.clone(),
        }
    }

    fn entries_from(&self, descriptors: &[Descriptor]) -> EntryBatch {
        descriptors
            .iter()
            .map(|d| GozarEntry {
                descriptor: *d,
                relays: self.relay_cache.get(&d.node()).cloned().unwrap_or_default(),
            })
            .collect()
    }

    fn absorb_entries(&mut self, entries: &[GozarEntry], sent: &[Descriptor]) {
        let descriptors: DescriptorBatch = entries.iter().map(|e| e.descriptor).collect();
        for entry in entries {
            if entry.descriptor.class().is_private() && !entry.relays.is_empty() {
                self.relay_cache
                    .insert(entry.descriptor.node(), entry.relays.clone());
            }
        }
        self.view
            .apply_exchange_swapper(sent, &descriptors, self.id);
    }

    /// Maintains this private node's relay set: drops relays that stopped acknowledging and
    /// registers with new public nodes when redundancy falls below the target.
    fn maintain_relays(&mut self, ctx: &mut Context<'_, GozarMessage>) {
        if self.class.is_public() {
            return;
        }
        let stale_after = self.config.keepalive_rounds * 3;
        let rounds = self.rounds;
        let last_ack = &self.relay_last_ack;
        // `retain` via the slice API: InlineVec has no retain, and the list is tiny.
        let mut keep = RelayList::new();
        for relay in self.my_relays.iter().copied() {
            if rounds.saturating_sub(last_ack.get(&relay).copied().unwrap_or(0)) < stale_after {
                keep.push(relay);
            }
        }
        self.my_relays = keep;

        if self.my_relays.len() < self.config.relay_redundancy {
            // Candidate relays: public nodes from our view, then the bootstrap server.
            let mut candidates: Vec<NodeId> = self
                .view
                .iter()
                .filter(|d| d.class().is_public())
                .map(|d| d.node())
                .filter(|n| !self.my_relays.contains(n))
                .collect();
            if candidates.is_empty() {
                candidates = ctx
                    .bootstrap_sample(self.config.relay_redundancy)
                    .into_iter()
                    .filter(|n| !self.my_relays.contains(n) && *n != self.id)
                    .collect();
            }
            candidates.shuffle(ctx.rng());
            while self.my_relays.len() < self.config.relay_redundancy {
                let Some(candidate) = candidates.pop() else {
                    break;
                };
                self.my_relays.push(candidate);
                self.relay_last_ack.insert(candidate, self.rounds);
                ctx.send(candidate, GozarMessage::RelayRegister);
            }
        }

        // Periodic keep-alives refresh both the NAT mappings and the liveness check.
        if self.rounds.is_multiple_of(self.config.keepalive_rounds) {
            for relay in &self.my_relays {
                ctx.send(*relay, GozarMessage::KeepAlive);
            }
        }
    }

    /// Returns `true` if `relay` has accumulated enough timeout strikes to be treated as
    /// dead for relay selection.
    fn is_suspected(&self, relay: NodeId) -> bool {
        self.relay_suspect.get(&relay).copied().unwrap_or(0) >= RELAY_SUSPECT_STRIKES
    }

    /// Picks a relay for `target`, preferring relays that are neither suspected dead nor
    /// the one a just-timed-out request went through (`avoid`). Falls back to suspected
    /// relays — a possibly-dead path beats no path — but never returns `avoid` unless it
    /// is the only relay advertised.
    fn choose_relay(
        &self,
        target: NodeId,
        avoid: Option<NodeId>,
        rng: &mut SmallRng,
    ) -> Option<NodeId> {
        let relays = self.relay_cache.get(&target)?;
        let healthy: Vec<NodeId> = relays
            .iter()
            .copied()
            .filter(|r| Some(*r) != avoid && !self.is_suspected(*r))
            .collect();
        if let Some(relay) = healthy.choose(rng) {
            return Some(*relay);
        }
        let fallback: Vec<NodeId> = relays
            .iter()
            .copied()
            .filter(|r| Some(*r) != avoid)
            .collect();
        fallback
            .choose(rng)
            .copied()
            .or_else(|| avoid.filter(|r| relays.contains(r)))
    }

    /// Builds the shuffle request for the pending exchange's `sent` subset.
    fn build_request(&self, sent: &[Descriptor]) -> GozarMessage {
        let mut entries = self.entries_from(sent);
        entries.push(self.own_entry());
        GozarMessage::ShuffleRequest {
            initiator: self.id,
            initiator_class: self.class,
            initiator_relays: self.my_relays.clone(),
            entries,
        }
    }

    fn send_request(&mut self, target: NodeId, ctx: &mut Context<'_, GozarMessage>) {
        let sent = self
            .view
            .random_subset(self.config.shuffle_size.saturating_sub(1), ctx.rng());
        let request = self.build_request(&sent);
        if self.pending.is_some() {
            // The previous exchange is still unanswered; starting a new one discards it.
            self.abandoned_exchanges += 1;
        }
        let target_is_private = self
            .view
            .get(target)
            .map(|d| d.class().is_private())
            .unwrap_or_else(|| self.relay_cache.contains_key(&target));
        let route = if target_is_private {
            match self.choose_relay(target, None, ctx.rng()) {
                Some(relay) => Some(Some(relay)),
                None => {
                    // No relay known for the target: the exchange cannot be carried out.
                    self.unreachable_targets += 1;
                    self.pending = None;
                    return;
                }
            }
        } else {
            Some(None)
        };
        let relay = route.expect("unroutable targets returned above");
        self.exchange_seq += 1;
        self.pending = Some(PendingExchange {
            peer: target,
            sent,
            relay,
            seq: self.exchange_seq,
            attempt: 0,
        });
        match relay {
            Some(relay) => ctx.send(
                relay,
                GozarMessage::Relayed {
                    dest: target,
                    inner: Box::new(request),
                },
            ),
            None => ctx.send(target, request),
        }
        let policy = RetryPolicy::for_round_period(ctx.round_period());
        ctx.set_timer(policy.backoff(0), TimerKey::new(self.exchange_seq));
    }

    fn handle_request(
        &mut self,
        initiator: NodeId,
        initiator_class: NatClass,
        initiator_relays: RelayList,
        entries: EntryBatch,
        ctx: &mut Context<'_, GozarMessage>,
    ) {
        let reply_descriptors = self.view.random_subset(self.config.shuffle_size, ctx.rng());
        let reply_entries = self.entries_from(&reply_descriptors);
        if initiator_class.is_private() && !initiator_relays.is_empty() {
            self.relay_cache.insert(initiator, initiator_relays.clone());
        }
        self.absorb_entries(&entries, &reply_descriptors);
        let response = GozarMessage::ShuffleResponse {
            entries: reply_entries,
        };
        if initiator_class.is_public() {
            ctx.send(initiator, response);
        } else if let Some(relay) = initiator_relays.first() {
            ctx.send(
                *relay,
                GozarMessage::Relayed {
                    dest: initiator,
                    inner: Box::new(response),
                },
            );
        }
        // If a private initiator advertised no relays the response is simply lost, as it
        // would be on a real deployment.
    }
}

impl Protocol for GozarNode {
    type Message = GozarMessage;

    fn on_start(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.bootstrap(ctx);
        self.maintain_relays(ctx);
    }

    fn on_round(&mut self, ctx: &mut Context<'_, Self::Message>) {
        self.rounds += 1;
        self.view.increment_ages();
        self.maintain_relays(ctx);
        if self.view.is_empty() {
            // Re-contact the bootstrap server instead of staying isolated (see Cyclon).
            self.bootstrap(ctx);
            return;
        }
        let Some(target) = self.view.oldest().map(|d| d.node()) else {
            return;
        };
        // Keep the descriptor until we know the exchange can be routed; `send_request`
        // consults it for the target's class.
        self.send_request(target, ctx);
        self.view.remove(target);
    }

    fn on_message(
        &mut self,
        from: NodeId,
        msg: Self::Message,
        ctx: &mut Context<'_, Self::Message>,
    ) {
        // Any delivered message is proof of life: clear timeout strikes against the
        // sender so a once-congested relay becomes eligible again.
        self.relay_suspect.remove(&from);
        match msg {
            GozarMessage::ShuffleRequest {
                initiator,
                initiator_class,
                initiator_relays,
                entries,
            } => self.handle_request(initiator, initiator_class, initiator_relays, entries, ctx),
            GozarMessage::ShuffleResponse { entries } => {
                self.exchanges_completed += 1;
                let sent = match self.pending.take() {
                    Some(pending) => pending.sent,
                    None => DescriptorBatch::new(),
                };
                self.absorb_entries(&entries, &sent);
            }
            GozarMessage::Relayed { dest, inner } => {
                self.messages_relayed += 1;
                ctx.send(dest, *inner);
            }
            GozarMessage::RelayRegister | GozarMessage::KeepAlive => {
                // Acknowledge so the private node knows we are alive; the acknowledgement
                // also serves as the liveness signal for relay rotation.
                ctx.send(from, GozarMessage::RelayAccept);
            }
            GozarMessage::RelayAccept => {
                self.relay_last_ack.insert(from, self.rounds);
            }
        }
    }

    /// Retry timer for the in-flight exchange. A timeout on a relayed request counts a
    /// strike against the relay that carried it; the retry fails over to an alternate
    /// relay, so one dead relay cannot starve a private target's exchanges.
    fn on_timer(&mut self, key: TimerKey, ctx: &mut Context<'_, Self::Message>) {
        let (peer, next_attempt, sent, prior_relay) = match self.pending.as_ref() {
            Some(p) if p.seq == key.as_u64() => (p.peer, p.attempt + 1, p.sent.clone(), p.relay),
            _ => return,
        };
        if let Some(relay) = prior_relay {
            *self.relay_suspect.entry(relay).or_insert(0) += 1;
        }
        let policy = RetryPolicy::for_round_period(ctx.round_period());
        if policy.exhausted(next_attempt) {
            self.pending = None;
            self.abandoned_exchanges += 1;
            return;
        }
        let relay = if prior_relay.is_some() {
            match self.choose_relay(peer, prior_relay, ctx.rng()) {
                Some(alternate) => Some(alternate),
                None => {
                    // The target's advertised relays evaporated from the cache.
                    self.unreachable_targets += 1;
                    self.pending = None;
                    self.abandoned_exchanges += 1;
                    return;
                }
            }
        } else {
            None
        };
        if let Some(p) = self.pending.as_mut() {
            p.attempt = next_attempt;
            p.relay = relay;
        }
        let request = self.build_request(&sent);
        self.retries_fired += 1;
        match relay {
            Some(relay) => ctx.send(
                relay,
                GozarMessage::Relayed {
                    dest: peer,
                    inner: Box::new(request),
                },
            ),
            None => ctx.send(peer, request),
        }
        ctx.set_timer(policy.backoff(next_attempt), key);
    }
}

impl PssNode for GozarNode {
    fn nat_class(&self) -> NatClass {
        self.class
    }

    fn known_peers(&self) -> Vec<NodeId> {
        self.view.nodes()
    }

    fn for_each_known_peer(&self, visit: &mut dyn FnMut(NodeId)) {
        for descriptor in self.view.iter() {
            visit(descriptor.node());
        }
    }

    fn draw_sample(&mut self, rng: &mut SmallRng) -> Option<NodeId> {
        self.view.random(rng).map(|d| d.node())
    }

    fn rounds_executed(&self) -> u64 {
        self.rounds
    }

    fn retries_fired(&self) -> u64 {
        self.retries_fired
    }

    fn exchanges_abandoned(&self) -> u64 {
        self.abandoned_exchanges
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use croupier_nat::NatTopologyBuilder;
    use croupier_simulator::{Simulation, SimulationConfig};

    fn build_sim(n_public: u64, n_private: u64, seed: u64) -> Simulation<GozarNode> {
        let topology = NatTopologyBuilder::new(seed).build();
        let mut sim = Simulation::new(SimulationConfig::default().with_seed(seed));
        sim.set_delivery_filter(topology.clone());
        for i in 0..(n_public + n_private) {
            let id = NodeId::new(i);
            let class = if i < n_public {
                NatClass::Public
            } else {
                NatClass::Private
            };
            topology.add_node(id, class);
            if class.is_public() {
                sim.register_public(id);
            }
            sim.add_node(id, GozarNode::new(id, class, BaselineConfig::default()));
        }
        sim
    }

    #[test]
    fn private_nodes_register_with_relays() {
        let mut sim = build_sim(5, 20, 1);
        sim.run_for_rounds(10);
        for (_, node) in sim.nodes() {
            if node.nat_class().is_private() {
                assert!(
                    !node.relays().is_empty(),
                    "private node {} should have relays",
                    node.id()
                );
            } else {
                assert!(node.relays().is_empty());
            }
        }
    }

    #[test]
    fn views_mix_public_and_private_nodes() {
        let mut sim = build_sim(5, 20, 2);
        sim.run_for_rounds(60);
        let mut nodes_knowing_private = 0;
        for (_, node) in sim.nodes() {
            assert!(!node.view().is_empty());
            if node.view().iter().any(|d| d.class().is_private()) {
                nodes_knowing_private += 1;
            }
        }
        assert!(
            nodes_knowing_private > 15,
            "most views should contain private nodes, got {nodes_knowing_private}"
        );
    }

    #[test]
    fn exchanges_with_private_targets_complete_through_relays() {
        let mut sim = build_sim(5, 20, 3);
        sim.run_for_rounds(60);
        let relayed: u64 = sim.nodes().map(|(_, n)| n.messages_relayed()).sum();
        assert!(relayed > 0, "public nodes should relay traffic");
        for (_, node) in sim.nodes() {
            assert!(
                node.exchanges_completed() > 10,
                "node {} completed only {} exchanges",
                node.id(),
                node.exchanges_completed()
            );
        }
    }

    #[test]
    fn only_public_nodes_relay() {
        let mut sim = build_sim(5, 20, 4);
        sim.run_for_rounds(40);
        for (_, node) in sim.nodes() {
            if node.nat_class().is_private() {
                assert_eq!(node.messages_relayed(), 0);
            }
        }
    }

    #[test]
    fn descriptor_entries_carry_relays_and_cost_extra_bytes() {
        let plain = GozarEntry::public(Descriptor::new(NodeId::new(1), NatClass::Public));
        let relayed = GozarEntry {
            descriptor: Descriptor::new(NodeId::new(2), NatClass::Private),
            relays: vec![NodeId::new(3), NodeId::new(4)].into(),
        };
        let req_plain = GozarMessage::ShuffleResponse {
            entries: vec![plain].into(),
        };
        let req_relayed = GozarMessage::ShuffleResponse {
            entries: vec![relayed].into(),
        };
        assert_eq!(
            req_relayed.wire_size() - req_plain.wire_size(),
            2 * RELAY_ADDR_BYTES
        );
    }

    #[test]
    fn relayed_envelope_costs_more_than_the_inner_message() {
        let inner = GozarMessage::KeepAlive;
        let relayed = GozarMessage::Relayed {
            dest: NodeId::new(1),
            inner: Box::new(inner.clone()),
        };
        assert!(relayed.wire_size() > inner.wire_size());
    }

    #[test]
    fn gozar_sends_more_messages_than_a_relay_free_protocol() {
        // Sanity check of the overhead ordering reproduced in Fig. 7(a): with the same view
        // sizes, Gozar needs strictly more messages than Croupier because of relaying
        // envelopes, relay registrations and keep-alives.
        let mut gozar = build_sim(5, 20, 5);
        gozar.run_for_rounds(50);
        let gozar_messages = gozar.traffic().total_messages_sent();

        let topology = NatTopologyBuilder::new(5).build();
        let mut croupier_sim = Simulation::new(SimulationConfig::default().with_seed(5));
        croupier_sim.set_delivery_filter(topology.clone());
        for i in 0..25u64 {
            let id = NodeId::new(i);
            let class = if i < 5 {
                NatClass::Public
            } else {
                NatClass::Private
            };
            topology.add_node(id, class);
            if class.is_public() {
                croupier_sim.register_public(id);
            }
            croupier_sim.add_node(
                id,
                croupier::CroupierNode::new(id, class, croupier::CroupierConfig::default()),
            );
        }
        croupier_sim.run_for_rounds(50);
        let croupier_messages = croupier_sim.traffic().total_messages_sent();
        assert!(
            gozar_messages > croupier_messages,
            "gozar={gozar_messages} should exceed croupier={croupier_messages}"
        );
    }
}
