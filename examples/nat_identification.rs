//! Runs the paper's distributed NAT-type identification protocol (§V, Algorithm 1) against
//! a variety of gateway configurations and prints each node's conclusion and the evidence
//! behind it — no STUN server involved.
//!
//! ```text
//! cargo run --example nat_identification
//! ```

use std::sync::Arc;

use croupier::{NatIdentificationConfig, NatIdentificationNode};
use croupier_nat::{AddressInfo, FilteringPolicy, NatGatewayConfig, NatTopologyBuilder};
use croupier_simulator::{NodeId, SimDuration, Simulation, SimulationConfig};

/// A named gateway profile: the label printed per row and the topology setup for the node
/// under test.
type GatewayProfile<'a> = (&'a str, Box<dyn Fn(NodeId) + 'a>);

fn main() {
    let topology = NatTopologyBuilder::new(7).build();
    let info: Arc<dyn AddressInfo + Send + Sync> = Arc::new(topology.clone());
    let mut sim = Simulation::new(SimulationConfig::default().with_seed(7));
    sim.set_delivery_filter(topology.clone());

    // A handful of already-joined public nodes play the helper role.
    for i in 0..6u64 {
        let id = NodeId::new(i);
        topology.add_public_node(id);
        sim.register_public(id);
        sim.add_node(id, NatIdentificationNode::new_helper(id, Arc::clone(&info)));
    }

    // Nodes under test, one per gateway configuration of interest.
    let profiles: Vec<GatewayProfile<'_>> = vec![
        (
            "open internet (public IP)",
            Box::new(|id| topology.add_public_node(id)),
        ),
        (
            "UPnP-enabled NAT",
            Box::new(|id| topology.add_upnp_node(id)),
        ),
        (
            "NAT, endpoint-independent filtering",
            Box::new(|id| {
                topology.add_private_node_with(
                    id,
                    NatGatewayConfig::with_filtering(FilteringPolicy::EndpointIndependent),
                )
            }),
        ),
        (
            "NAT, address-dependent filtering",
            Box::new(|id| {
                topology.add_private_node_with(
                    id,
                    NatGatewayConfig::with_filtering(FilteringPolicy::AddressDependent),
                )
            }),
        ),
        (
            "NAT, address-and-port-dependent filtering",
            Box::new(|id| {
                topology.add_private_node_with(
                    id,
                    NatGatewayConfig::with_filtering(FilteringPolicy::AddressAndPortDependent),
                )
            }),
        ),
    ];

    let mut clients = Vec::new();
    for (index, (label, setup)) in profiles.iter().enumerate() {
        let id = NodeId::new(100 + index as u64);
        setup(id);
        sim.add_node(
            id,
            NatIdentificationNode::new_client(
                id,
                Arc::clone(&info),
                NatIdentificationConfig::default(),
            ),
        );
        clients.push((id, *label));
    }

    // Give every probe and timeout time to resolve.
    sim.run_for(SimDuration::from_secs(10));

    println!("{:<45} {:<10} evidence", "gateway configuration", "class");
    println!("{}", "-".repeat(90));
    for (id, label) in clients {
        let node = sim.node(id).expect("client exists");
        println!(
            "{label:<45} {:<10} {}",
            node.conclusion()
                .map(|c| c.to_string())
                .unwrap_or_else(|| "unknown".into()),
            node.evidence().map(|e| e.to_string()).unwrap_or_default(),
        );
    }
    println!(
        "\ntotal identification messages delivered: {}",
        sim.network_stats().delivered
    );
}
