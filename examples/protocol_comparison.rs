//! Side-by-side comparison of the four peer-sampling services on the same workload:
//! randomness of the resulting overlay (in-degree statistics, path length, clustering) and
//! per-class protocol overhead — a condensed, text-only version of the paper's Figures 6
//! and 7(a).
//!
//! ```text
//! cargo run --release --example protocol_comparison
//! ```

use croupier_experiments::figures::{fig6_randomness, fig7_overhead};
use croupier_experiments::output::Scale;
use croupier_metrics::indegree_histogram;

fn main() {
    let scale = Scale::Tiny;
    println!("running the four protocols at the reduced '{scale:?}' scale ...\n");

    // Randomness properties (Fig. 6).
    let outputs = fig6_randomness::run_protocols(scale);
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>14} {:>12}",
        "protocol", "nodes", "indeg. min", "indeg. max", "avg path len", "clustering"
    );
    for (kind, output) in &outputs {
        let histogram = indegree_histogram(&output.final_snapshot);
        let min = histogram.first().map(|(d, _)| *d).unwrap_or(0);
        let max = histogram.last().map(|(d, _)| *d).unwrap_or(0);
        let last = output.samples.last().expect("samples exist");
        println!(
            "{:<10} {:>8} {:>12} {:>12} {:>14.2} {:>12.3}",
            kind.name(),
            output.final_snapshot.node_count(),
            min,
            max,
            last.avg_path_length.unwrap_or(f64::NAN),
            last.clustering.unwrap_or(f64::NAN),
        );
    }

    // Protocol overhead (Fig. 7a).
    println!("\nper-node load at steady state (bytes per second):\n");
    println!(
        "{:<10} {:>16} {:>16}",
        "protocol", "public nodes", "private nodes"
    );
    for (kind, report) in fig7_overhead::measure(scale) {
        println!(
            "{:<10} {:>16.1} {:>16.1}",
            kind.name(),
            report.public.avg_load_bytes_per_sec,
            report.private.avg_load_bytes_per_sec,
        );
    }
    println!("\n(run the `figures` binary with --scale paper for the full-scale series)");
}
