//! In-degree family scaling demo: the full per-sample recount vs the incremental
//! delta-fed tracker on a synthetic steady-state snapshot, at any node count.
//!
//! ```text
//! cargo run --release --example indegree_scaling [nodes] [churn_permille]
//! ```
//!
//! Defaults to 1 000 000 nodes and 5 ‰ edge churn (the steady-state shape a gossip
//! overlay produces between consecutive samples). The program stages a tracker synced to
//! capture `k`, re-targets the given fraction of edges to form capture `k + 1`, then
//! times the O(E) full recount (histogram + stats + Gini) against the O(Δ) incremental
//! update of the same family — and asserts the two Gini coefficients are bit-identical,
//! which is the invariant `tests/property_tests.rs` pins at small scale. The measured
//! ratio at 10k/100k nodes is gated in `ci/bench-baseline/BENCH_microbench_metrics.json`
//! (`indegree/*` rows); this example exists so the 1M-node point stays reproducible
//! without putting a minutes-long row in the gated bench suite.

use std::time::Instant;

use croupier_suite::metrics::{
    indegree_gini, indegree_histogram, indegree_stats, IncrementalIndegree, NodeObservation,
    OverlaySnapshot,
};
use croupier_suite::simulator::{NatClass, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Out-edges per node: roughly a Croupier node's two view capacities.
const OUT_DEGREE: u64 = 20;

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: u64 = args
        .next()
        .map(|a| a.parse().expect("nodes must be a number"))
        .unwrap_or(1_000_000);
    let churn_permille: u64 = args
        .next()
        .map(|a| a.parse().expect("churn_permille must be a number"))
        .unwrap_or(5);

    let mut rng = SmallRng::seed_from_u64(0x1DE6);
    let observations: Vec<NodeObservation> = (0..nodes)
        .map(|i| NodeObservation {
            id: NodeId::new(i),
            class: if i % 5 == 0 {
                NatClass::Public
            } else {
                NatClass::Private
            },
            ratio_estimate: Some(0.2),
            rounds_executed: 50,
        })
        .collect();
    let mut edges = Vec::with_capacity((nodes * OUT_DEGREE) as usize);
    for i in 0..nodes {
        for _ in 0..OUT_DEGREE {
            edges.push((NodeId::new(i), NodeId::new(rng.gen_range(0..nodes))));
        }
    }
    edges.sort_unstable();
    println!(
        "{} nodes, {} directed edges, {} permille churn per sample",
        nodes,
        edges.len(),
        churn_permille
    );

    // Capture k: sync the tracker (this first update is the one-off O(E) rebuild).
    let mut snapshot = OverlaySnapshot::default();
    snapshot.enable_delta_tracking();
    snapshot.replace_from_parts(observations.clone(), edges.clone());
    let mut tracker = IncrementalIndegree::new();
    tracker.update(&snapshot);

    // Capture k+1: the churned edge set with an exact delta against capture k.
    let churned = edges.len() as u64 * churn_permille / 1000;
    for _ in 0..churned {
        let i = rng.gen_range(0..edges.len());
        edges[i].1 = NodeId::new(rng.gen_range(0..nodes));
    }
    snapshot.replace_from_parts(observations, edges);

    let start = Instant::now();
    let full_histogram = indegree_histogram(&snapshot);
    let full_stats = indegree_stats(&snapshot);
    let full_gini = indegree_gini(&snapshot);
    let full_elapsed = start.elapsed();

    let start = Instant::now();
    tracker.update(&snapshot);
    let fast_histogram = tracker.histogram();
    let fast_stats = tracker.stats();
    let fast_gini = tracker.gini();
    let fast_elapsed = start.elapsed();

    assert_eq!(tracker.fast_update_count(), 1, "delta fast path must fire");
    assert_eq!(fast_histogram, full_histogram);
    assert_eq!(fast_stats, full_stats);
    assert_eq!(
        fast_gini.to_bits(),
        full_gini.to_bits(),
        "incremental Gini must be bit-identical to the recount"
    );

    println!(
        "full recount:  {:>10.3} ms  (gini {:.6}, mean in-degree {:.2})",
        full_elapsed.as_secs_f64() * 1e3,
        full_gini,
        full_stats.mean
    );
    println!(
        "incremental:   {:>10.3} ms  (bit-identical family)",
        fast_elapsed.as_secs_f64() * 1e3
    );
    println!(
        "speedup:       {:>10.1}x",
        full_elapsed.as_secs_f64() / fast_elapsed.as_secs_f64()
    );
}
