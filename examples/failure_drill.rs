//! Catastrophic-failure drill: bring a NATed overlay to steady state, crash a large
//! fraction of the nodes at one instant, and inspect how much of the surviving overlay is
//! still connected — the scenario of the paper's Figure 7(b).
//!
//! ```text
//! cargo run --release --example failure_drill
//! ```

use croupier_experiments::protocols::{run_failure_kind, ProtocolConfigs, ProtocolKind};
use croupier_experiments::runner::ExperimentParams;

fn main() {
    let n_public = 40;
    let n_private = 160;
    let configs = ProtocolConfigs::default();
    let fractions = [0.5, 0.7, 0.9];

    println!(
        "Overlay of {} nodes ({} public / {} private), warmed up for 80 rounds, then failing\n\
         a fraction of the nodes at a single instant.\n",
        n_public + n_private,
        n_public,
        n_private
    );
    println!(
        "{:>10} {:>12} {:>12} {:>12}",
        "failed", "croupier", "gozar", "nylon"
    );

    for fraction in fractions {
        let mut row = format!("{:>9}%", (fraction * 100.0) as u32);
        for kind in [
            ProtocolKind::Croupier,
            ProtocolKind::Gozar,
            ProtocolKind::Nylon,
        ] {
            let params = ExperimentParams::default()
                .with_seed(0xFA11)
                .with_population(n_public, n_private)
                .with_rounds(80)
                .with_sample_every(80);
            let connected = run_failure_kind(kind, &params, &configs, fraction);
            row.push_str(&format!(" {:>11.1}%", connected * 100.0));
        }
        println!("{row}");
    }
    println!("\n(values are the share of surviving nodes inside the biggest connected cluster)");
}
