//! Sharded engine demo: the same Croupier deployment executed phase-parallel on several
//! worker threads, with a determinism check across thread counts.
//!
//! ```text
//! cargo run --release --example sharded_scale [nodes] [threads]
//! ```
//!
//! Defaults to 2 000 nodes and 4 threads. The run is repeated with one worker thread and
//! the two traffic ledgers are compared — they are bit-identical, which is the sharded
//! engine's core guarantee (see `crates/simulator/src/sharded.rs`).

use croupier::{CroupierConfig, CroupierNode};
use croupier_nat::NatTopologyBuilder;
use croupier_simulator::{
    NatClass, NodeId, PssNode, ShardedSimulation, SimulationConfig, TrafficLedger,
};

fn run(
    nodes: u64,
    threads: usize,
    rounds: u64,
) -> (ShardedSimulation<CroupierNode>, TrafficLedger) {
    let topology = NatTopologyBuilder::new(7).build();
    let mut sim = ShardedSimulation::new(
        SimulationConfig::default()
            .with_seed(7)
            .with_engine_threads(threads),
    );
    sim.set_delivery_filter(topology.clone());
    for i in 0..nodes {
        let id = NodeId::new(i);
        // 20 % public, as in the paper's evaluation.
        let class = if i % 5 == 0 {
            NatClass::Public
        } else {
            NatClass::Private
        };
        topology.add_node(id, class);
        if class.is_public() {
            sim.register_public(id);
        }
        sim.add_node(id, CroupierNode::new(id, class, CroupierConfig::default()));
    }
    sim.run_for_rounds(rounds);
    let traffic = sim.traffic_snapshot();
    (sim, traffic)
}

fn main() {
    let mut args = std::env::args().skip(1);
    let nodes: u64 = args.next().and_then(|a| a.parse().ok()).unwrap_or(2_000);
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);
    let rounds = 30;

    println!("running {nodes} Croupier nodes for {rounds} rounds on {threads} worker thread(s)...");
    let started = std::time::Instant::now();
    let (sim, traffic) = run(nodes, threads, rounds);
    let elapsed = started.elapsed();

    let stats = sim.network_stats();
    println!(
        "done in {elapsed:.2?}: {} delivered, {} blocked by NATs, {} bytes on the wire",
        stats.delivered,
        stats.blocked_by_nat,
        traffic.total_bytes_sent()
    );

    let estimates: Vec<f64> = sim
        .nodes()
        .filter_map(|(_, node)| node.ratio_estimate())
        .collect();
    let mean = estimates.iter().sum::<f64>() / estimates.len().max(1) as f64;
    println!(
        "mean ratio estimate across {} nodes: {mean:.3} (true ratio 0.200)",
        estimates.len()
    );

    println!("re-running with 1 worker thread to verify bit-identical traffic...");
    let (_, reference) = run(nodes, 1, rounds);
    assert_eq!(
        traffic, reference,
        "sharded runs must be bit-identical across thread counts"
    );
    println!("ok: {threads}-thread run matches the 1-thread run byte for byte");
}
