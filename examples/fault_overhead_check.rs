//! Measures the cost of an installed-but-inactive `FaultPlane` on the engine hot path —
//! the configuration every experiment run now carries (the driver always installs a
//! plane so faulty and clean runs execute the same code).
//!
//! Two identical 10k-node croupier deployments run in strict alternation, one with an
//! inactive plane and one without, so clock drift, allocator state and cache effects
//! hit both sides equally. This interleaved A/B is the basis of the "≤ 3 % when
//! disabled" claim in DESIGN.md §15.6; the `engine/fault_plane_inactive` bench row
//! guards the same path against regressions but runs late in its bench group, so its
//! absolute number is not comparable against `engine/10k_nodes/threads_1` directly.
//!
//! ```text
//! cargo run --release --example fault_overhead_check
//! ```

use croupier::{CroupierConfig, CroupierNode};
use croupier_nat::NatTopologyBuilder;
use croupier_suite::simulator::{
    FaultPlane, NatClass, NodeId, Seed, ShardedSimulation, SimulationConfig,
};
use std::time::Instant;

fn build() -> ShardedSimulation<CroupierNode> {
    let topology = NatTopologyBuilder::new(0xE17).build();
    let mut sim = ShardedSimulation::new(
        SimulationConfig::default()
            .with_seed(0xE17)
            .with_engine_threads(1),
    );
    sim.set_delivery_filter(topology.clone());
    for i in 0..10_000u64 {
        let id = NodeId::new(i);
        let class = if i % 5 == 0 {
            NatClass::Public
        } else {
            NatClass::Private
        };
        topology.add_node(id, class);
        if class.is_public() {
            sim.register_public(id);
        }
        sim.add_node(id, CroupierNode::new(id, class, CroupierConfig::default()));
    }
    sim.run_for_rounds(3);
    sim
}

fn main() {
    const ROUNDS: u32 = 30;
    let mut plain = build();
    let mut with_plane = build();
    with_plane.set_fault_plane(FaultPlane::new(Seed::new(0xE17)));
    let (mut t_plain, mut t_plane) = (0u128, 0u128);
    for _ in 0..ROUNDS {
        let t = Instant::now();
        plain.run_for_rounds(1);
        t_plain += t.elapsed().as_nanos();
        let t = Instant::now();
        with_plane.run_for_rounds(1);
        t_plane += t.elapsed().as_nanos();
    }
    println!("plain  {} ns/round", t_plain / u128::from(ROUNDS));
    println!("plane  {} ns/round", t_plane / u128::from(ROUNDS));
    println!(
        "overhead {:+.2}%",
        (t_plane as f64 / t_plain as f64 - 1.0) * 100.0
    );
}
