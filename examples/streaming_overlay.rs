//! A streaming-dissemination workload on top of the peer-sampling service — the kind of
//! video overlay the paper's introduction motivates and its conclusion plans to
//! integrate with Croupier.
//!
//! This is a thin demo over the `croupier_experiments::workload` engine: a publisher
//! emits one chunk per round, holders *push* each chunk to a sampled fan-out the round
//! after receiving it, and nodes missing chunks *pull* from one sampled holder per
//! round. Every transfer is judged by the same NAT delivery filter the protocols' own
//! messages ride.
//!
//! The comparison is deliberately unflattering to naive intuition. Running NAT-oblivious
//! Cyclon on the *same NATed population* does not collapse the stream — it reaches
//! slightly *higher* raw coverage than Croupier, because its views drift onto the
//! directly-reachable public core: pushes almost always land there, and private
//! subscribers pull the backlog from public holders. The price shows up elsewhere: a
//! third more duplicate traffic (the same chunks hammering the same small core) and a
//! view that no longer represents the population. Croupier's samples stay uniform —
//! which is the property the paper is actually after — but under *direct-only* transfer
//! many of those uniform pushes target private nodes no NAT mapping reaches, costing
//! coverage and latency; its successful serves end up even more public-heavy. Either
//! way, the `served by public` row shows both overlays leaning on the 20% public
//! minority for most deliveries: direct-path dissemination cannot tap private uplink
//! capacity, which is exactly the capacity argument for the NAT relaying the paper's
//! Gozar/Nylon baselines implement. It is also why the scenario/workload matrices run
//! Cyclon on an all-public population — on a NATed one its "peer sampling" silently
//! measures the public core, not the population.
//!
//! ```text
//! cargo run --release --example streaming_overlay
//! ```

use croupier::{CroupierConfig, CroupierNode};
use croupier_baselines::{BaselineConfig, CyclonNode};
use croupier_experiments::runner::run_pss;
use croupier_experiments::workload::{WorkloadReport, WorkloadSpec};
use croupier_experiments::ExperimentParams;

const N_PUBLIC: usize = 40;
const N_PRIVATE: usize = 160;
/// Rounds before publishing starts — lets the overlay warm up to steady state.
const WARMUP_ROUNDS: u64 = 20;
const PUBLISH_ROUNDS: u64 = 10;
/// Seal window: a chunk's coverage is frozen this many rounds after publication.
const COVERAGE_ROUNDS: u64 = 16;

fn run<P, F>(make_node: F) -> WorkloadReport
where
    P: croupier_simulator::Protocol + croupier_simulator::PssNode + Send,
    P::Message: Send,
    F: FnMut(
        croupier_simulator::NodeId,
        croupier_simulator::NatClass,
        &croupier_nat::NatTopology,
    ) -> P,
{
    let spec = WorkloadSpec::default()
        .with_window(WARMUP_ROUNDS, PUBLISH_ROUNDS)
        .with_rate(1.0)
        .with_fanout(3)
        .with_coverage_rounds(COVERAGE_ROUNDS);
    let params = ExperimentParams::default()
        .with_seed(11)
        .with_population(N_PUBLIC, N_PRIVATE)
        .with_rounds(WARMUP_ROUNDS + PUBLISH_ROUNDS + COVERAGE_ROUNDS)
        .with_workload(spec);
    run_pss(&params, make_node)
        .workload
        .expect("workload was configured")
}

fn main() {
    println!(
        "Streaming {PUBLISH_ROUNDS} chunks over {} nodes ({N_PUBLIC} public / {N_PRIVATE} private), \
         push fan-out 3 + one pull per round, sealed after {COVERAGE_ROUNDS} rounds\n",
        N_PUBLIC + N_PRIVATE,
    );

    // Croupier: NAT-aware, uniform samples over the whole population.
    let croupier = run(|id, class, _| CroupierNode::new(id, class, CroupierConfig::default()));
    // Cyclon on the *same NATed population*: views drift onto the reachable public core.
    let cyclon = run(|id, _, _| CyclonNode::new(id, BaselineConfig::default()));

    println!("{:>24} {:>12} {:>12}", "metric", "croupier", "cyclon/NATs");
    type Row = (&'static str, Box<dyn Fn(&WorkloadReport) -> String>);
    let rows: [Row; 7] = [
        (
            "chunk coverage",
            Box::new(|r| format!("{:.1}%", r.coverage * 100.0)),
        ),
        (
            "worst chunk",
            Box::new(|r| format!("{:.1}%", r.min_chunk_coverage * 100.0)),
        ),
        (
            "latency p50 (rounds)",
            Box::new(|r| format!("{}", r.latency_p50)),
        ),
        (
            "latency p95 (rounds)",
            Box::new(|r| format!("{}", r.latency_p95)),
        ),
        (
            "duplicate factor",
            Box::new(|r| format!("{:.2}", r.duplicate_factor)),
        ),
        (
            "served by public",
            Box::new(|r| format!("{:.1}%", r.public_serve_share * 100.0)),
        ),
        (
            "NAT-blocked transfers",
            Box::new(|r| format!("{}", r.nat_blocked)),
        ),
    ];
    for (label, fmt) in &rows {
        println!("{:>24} {:>12} {:>12}", label, fmt(&croupier), fmt(&cyclon));
    }

    println!(
        "\nBoth overlays deliver the stream off the {:.0}% public minority (croupier \
         {:.0}% / cyclon {:.0}% of deliveries served by public nodes): direct-only \
         transfer cannot tap private uplinks. Cyclon buys its coverage edge by drifting \
         onto that core — paying a {:.2}x duplicate factor against croupier's {:.2}x — \
         while croupier keeps the *samples* uniform and leaves converting blocked \
         private paths into deliveries to NAT relaying (see the gozar/nylon baselines).",
        100.0 * N_PUBLIC as f64 / (N_PUBLIC + N_PRIVATE) as f64,
        croupier.public_serve_share * 100.0,
        cyclon.public_serve_share * 100.0,
        cyclon.duplicate_factor,
        croupier.duplicate_factor,
    );
}
