//! A gossip-dissemination workload on top of the peer-sampling service — the kind of
//! video-streaming overlay the paper's introduction motivates and its conclusion plans to
//! integrate with Croupier.
//!
//! A source node publishes a piece of data (say, a stream chunk announcement). Every
//! dissemination round, nodes that hold the piece *push* it to a small fan-out of sampled
//! peers, and nodes that do not hold it *pull* from one sampled peer. A transfer only
//! succeeds if the initiator can actually reach the other endpoint through the NATs
//! (pushes towards unreachable private nodes are lost; pulls work whenever the initiator
//! can reach the holder, because the response rides the NAT mapping the request opened).
//!
//! With Croupier the samples are uniform and mostly reachable when needed, so coverage
//! completes in a few rounds; a NAT-oblivious Cyclon run on the same population wastes most
//! of its pushes on unreachable private nodes and its private nodes pull from stale,
//! mostly-private views, so coverage lags.
//!
//! ```text
//! cargo run --release --example streaming_overlay
//! ```

use std::collections::HashSet;

use croupier::{CroupierConfig, CroupierNode};
use croupier_baselines::{BaselineConfig, CyclonNode};
use croupier_nat::NatTopologyBuilder;
use croupier_simulator::{
    DeliveryFilter, NatClass, NodeId, Protocol, PssNode, Simulation, SimulationConfig,
};

const N_PUBLIC: u64 = 40;
const N_PRIVATE: u64 = 160;
const WARMUP_ROUNDS: u64 = 60;
const FANOUT: usize = 3;
const DISSEMINATION_ROUNDS: usize = 12;

/// Builds a NATed population running protocol `P` and warms the overlay up.
fn build<P, F>(seed: u64, mut make_node: F) -> (Simulation<P>, croupier_nat::NatTopology)
where
    P: Protocol + PssNode,
    F: FnMut(NodeId, NatClass) -> P,
{
    let topology = NatTopologyBuilder::new(seed).build();
    let mut sim = Simulation::new(SimulationConfig::default().with_seed(seed));
    sim.set_delivery_filter(topology.clone());
    for i in 0..(N_PUBLIC + N_PRIVATE) {
        let id = NodeId::new(i);
        let class = if i < N_PUBLIC {
            NatClass::Public
        } else {
            NatClass::Private
        };
        topology.add_node(id, class);
        if class.is_public() {
            sim.register_public(id);
        }
        sim.add_node(id, make_node(id, class));
    }
    sim.run_for_rounds(WARMUP_ROUNDS);
    (sim, topology)
}

/// Push-pull dissemination driven by peer samples, honouring NAT reachability for the
/// initiating direction of every transfer. Returns coverage after each round.
fn disseminate<P: Protocol + PssNode>(
    sim: &mut Simulation<P>,
    topology: &croupier_nat::NatTopology,
) -> Vec<f64> {
    let mut reachability = topology.clone();
    let total = sim.len() as f64;
    let everyone = sim.node_ids();
    let mut infected: HashSet<NodeId> = HashSet::new();
    infected.insert(NodeId::new(0));
    let mut coverage = Vec::new();

    for _ in 0..DISSEMINATION_ROUNDS {
        let now = sim.now();
        let mut next = infected.clone();

        // Push: holders send the piece to sampled peers they can reach directly.
        for holder in infected.iter().copied().collect::<Vec<_>>() {
            for _ in 0..FANOUT {
                if let Some(peer) = sim.sample_from(holder) {
                    if reachability.can_deliver(holder, peer, now).is_delivered() {
                        next.insert(peer);
                    }
                }
            }
        }

        // Pull: nodes without the piece ask one sampled peer; the request must reach the
        // peer, the response returns through the mapping the request opened.
        for node in &everyone {
            if infected.contains(node) {
                continue;
            }
            if let Some(peer) = sim.sample_from(*node) {
                if infected.contains(&peer)
                    && reachability.can_deliver(*node, peer, now).is_delivered()
                {
                    next.insert(*node);
                }
            }
        }

        infected = next;
        coverage.push(infected.len() as f64 / total);
    }
    coverage
}

fn main() {
    println!(
        "Disseminating one chunk announcement over {} nodes ({} public / {} private), fan-out {FANOUT}\n",
        N_PUBLIC + N_PRIVATE,
        N_PUBLIC,
        N_PRIVATE
    );

    // Croupier: NAT-aware peer sampling.
    let (mut croupier_sim, croupier_topology) = build(11, |id, class| {
        CroupierNode::new(id, class, CroupierConfig::default())
    });
    let croupier_coverage = disseminate(&mut croupier_sim, &croupier_topology);

    // Cyclon on the *same NATed population*: views fill with unreachable private nodes and
    // private nodes are under-represented, so coverage lags.
    let (mut cyclon_sim, cyclon_topology) = build(11, |id, _class| {
        CyclonNode::new(id, BaselineConfig::default())
    });
    let cyclon_coverage = disseminate(&mut cyclon_sim, &cyclon_topology);

    println!(
        "{:>6} {:>20} {:>20}",
        "round", "croupier coverage", "cyclon coverage"
    );
    for (round, (croupier, cyclon)) in croupier_coverage.iter().zip(&cyclon_coverage).enumerate() {
        println!(
            "{:>6} {:>19.1}% {:>19.1}%",
            round + 1,
            croupier * 100.0,
            cyclon * 100.0
        );
    }

    let croupier_final = croupier_coverage.last().copied().unwrap_or(0.0);
    let cyclon_final = cyclon_coverage.last().copied().unwrap_or(0.0);
    println!(
        "\nfinal coverage: croupier {:.1}% vs cyclon-under-NATs {:.1}%",
        croupier_final * 100.0,
        cyclon_final * 100.0
    );
}
