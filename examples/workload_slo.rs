//! The workload-tier SLO table for croupier vs cyclon: the same streaming dissemination
//! the CI `workload-matrix` job gates, run for both protocols under the tier's three
//! scenarios (`reboot_storm`, `mobility_wave`, `lossy_10`) at quick scale.
//!
//! Each cell streams chunks through the scenario's dynamics and through a no-dynamics
//! control of the same seed; the table reports coverage, delivery-latency percentiles
//! and the p95 regression against the control, with the SLO verdict per cell. Note the
//! matrix convention: cyclon is NAT-oblivious, so its cells run on an all-public
//! population of the same size (see `examples/streaming_overlay.rs` for cyclon on the
//! NATed population itself).
//!
//! ```text
//! cargo run --release --example workload_slo
//! ```

use croupier_experiments::matrix::{
    matrix_rounds, matrix_workload_spec, run_workload_matrix, WORKLOAD_TIER_NAMES,
};
use croupier_experiments::output::Scale;
use croupier_experiments::protocols::ProtocolKind;
use croupier_experiments::scenario::ScenarioScript;

fn main() {
    let scale = Scale::Quick;
    let rounds = matrix_rounds(scale);
    let spec = matrix_workload_spec(scale);
    println!(
        "Workload tier at quick scale: {} rounds, publish {} chunks from round {}, \
         fan-out {}, sealed after {} rounds",
        rounds, spec.publish_rounds, spec.start_round, spec.fanout, spec.coverage_rounds
    );
    println!(
        "SLOs: coverage >= {:.0}% within the seal window, p95 <= {} rounds, \
         p95 regression vs control <= {} rounds\n",
        spec.slo.min_coverage * 100.0,
        spec.slo.max_p95_latency_rounds,
        spec.slo.max_p95_regression_rounds
    );
    let scenarios: Vec<ScenarioScript> = WORKLOAD_TIER_NAMES
        .iter()
        .map(|name| ScenarioScript::by_name(name, rounds).expect("canned script"))
        .collect();
    let protocols = [ProtocolKind::Croupier, ProtocolKind::Cyclon];
    for report in run_workload_matrix(&scenarios, &protocols, scale, 42) {
        print!("{}", report.render_table());
    }
}
