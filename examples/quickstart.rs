//! Quickstart: build a small NATed network, run Croupier for a minute of simulated time,
//! and draw peer samples.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use croupier::{CroupierConfig, CroupierNode};
use croupier_nat::NatTopologyBuilder;
use croupier_simulator::{NatClass, NodeId, PssNode, Simulation, SimulationConfig};

fn main() {
    // 20 % of the nodes are publicly reachable, the rest sit behind NATs — the ratio the
    // paper uses throughout its evaluation.
    let n_public = 20u64;
    let n_private = 80u64;

    let topology = NatTopologyBuilder::new(42).build();
    let mut sim = Simulation::new(SimulationConfig::default().with_seed(42));
    sim.set_delivery_filter(topology.clone());

    for i in 0..(n_public + n_private) {
        let id = NodeId::new(i);
        let class = if i < n_public {
            NatClass::Public
        } else {
            NatClass::Private
        };
        topology.add_node(id, class);
        if class.is_public() {
            sim.register_public(id);
        }
        sim.add_node(id, CroupierNode::new(id, class, CroupierConfig::default()));
    }

    // One simulated minute of one-second gossip rounds.
    sim.run_for_rounds(60);

    println!(
        "nodes: {} ({} public, {} private)",
        sim.len(),
        n_public,
        n_private
    );
    println!(
        "messages delivered: {}, blocked by NATs: {}",
        sim.network_stats().delivered,
        sim.network_stats().blocked_by_nat
    );

    // Every node — public or private — now has a local estimate of the public/private
    // ratio and can draw uniform peer samples.
    let witness = NodeId::new(n_public + 1); // a private node
    let node = sim.node(witness).expect("node exists");
    println!(
        "node {witness}: ratio estimate = {:.3} (true ratio = {:.3})",
        node.ratio_estimate().unwrap_or(f64::NAN),
        n_public as f64 / (n_public + n_private) as f64,
    );
    println!(
        "node {witness}: public view = {:?}",
        node.public_view().nodes()
    );

    print!("ten peer samples drawn by node {witness}: ");
    for _ in 0..10 {
        if let Some(sample) = sim.sample_from(witness) {
            print!("{sample} ");
        }
    }
    println!();
}
